(* Tests for the Specification 4.1 checker itself, on synthetic call
   interval lists. *)

open Smr
open Test_util
open Core

let mk_call ~pid ~label ~seq ~started ?finished ?result () =
  { History.c_pid = pid;
    c_label = label;
    c_seq = seq;
    c_started = started;
    c_finished = finished;
    c_result = result;
    c_rmrs = 0;
    c_steps = 0 }

let poll ~pid ~seq ~started ~finished ~result =
  mk_call ~pid ~label:Signaling.poll_label ~seq ~started ~finished
    ~result:(if result then 1 else 0) ()

let signal ~pid ~started ?finished () =
  mk_call ~pid ~label:Signaling.signal_label ~seq:0 ~started ?finished
    ~result:0 ()

let wait ~pid ~started ?finished () =
  mk_call ~pid ~label:Signaling.wait_label ~seq:0 ~started ?finished ~result:0 ()

let test_ok_history () =
  let calls =
    [ poll ~pid:1 ~seq:0 ~started:0 ~finished:1 ~result:false;
      signal ~pid:0 ~started:2 ~finished:3 ();
      poll ~pid:1 ~seq:1 ~started:4 ~finished:5 ~result:true ]
  in
  check_int "no violations" 0 (List.length (Signaling.check_polling calls))

let test_true_without_signal () =
  let calls = [ poll ~pid:1 ~seq:0 ~started:0 ~finished:1 ~result:true ] in
  check_int "flagged" 1 (List.length (Signaling.check_polling calls))

let test_true_with_overlapping_signal_ok () =
  (* Signal has begun (not completed) before the poll returns: legal. *)
  let calls =
    [ signal ~pid:0 ~started:0 ();
      poll ~pid:1 ~seq:0 ~started:1 ~finished:2 ~result:true ]
  in
  check_int "overlap is fine" 0 (List.length (Signaling.check_polling calls))

let test_false_after_completed_signal () =
  let calls =
    [ signal ~pid:0 ~started:0 ~finished:1 ();
      poll ~pid:1 ~seq:0 ~started:2 ~finished:3 ~result:false ]
  in
  match Signaling.check_polling calls with
  | [ Signaling.Poll_false_after_signal (_, _) ] -> ()
  | violations ->
    Alcotest.fail (Printf.sprintf "expected 1 violation, got %d" (List.length violations))

let test_false_with_concurrent_signal_ok () =
  (* The signal began but did not complete before the poll began: false is
     a legal answer. *)
  let calls =
    [ signal ~pid:0 ~started:0 ~finished:10 ();
      poll ~pid:1 ~seq:0 ~started:2 ~finished:3 ~result:false ]
  in
  check_int "concurrent signal tolerated" 0
    (List.length (Signaling.check_polling calls))

let test_unfinished_poll_ignored () =
  let calls = [ poll ~pid:1 ~seq:0 ~started:0 ~finished:1 ~result:true ] in
  let pending = { (List.hd calls) with History.c_finished = None } in
  check_int "pending calls not judged" 0
    (List.length (Signaling.check_polling [ pending ]))

let test_blocking_checker () =
  let ok =
    [ signal ~pid:0 ~started:0 (); wait ~pid:1 ~started:1 ~finished:5 () ]
  in
  check_int "wait after signal ok" 0 (List.length (Signaling.check_blocking ok));
  let bad = [ wait ~pid:1 ~started:1 ~finished:5 () ] in
  check_int "wait without signal flagged" 1
    (List.length (Signaling.check_blocking bad));
  let pending = [ wait ~pid:1 ~started:1 () ] in
  check_int "pending wait fine" 0 (List.length (Signaling.check_blocking pending))

let test_validate_config () =
  let flex1 = { Signaling.any_flexibility with max_waiters = Some 1 } in
  check_true "one waiter ok"
    (Signaling.validate_config flex1
       (Signaling.config ~n:4 ~waiters:[ 1 ] ~signalers:[ 0 ])
    = Ok ());
  check_true "two waiters rejected"
    (match
       Signaling.validate_config flex1
         (Signaling.config ~n:4 ~waiters:[ 1; 2 ] ~signalers:[ 0 ])
     with
    | Error _ -> true
    | Ok () -> false);
  let flexs = { Signaling.any_flexibility with max_signalers = Some 1 } in
  check_true "two signalers rejected"
    (match
       Signaling.validate_config flexs
         (Signaling.config ~n:4 ~waiters:[ 2 ] ~signalers:[ 0; 1 ])
     with
    | Error _ -> true
    | Ok () -> false)

let test_validate_config_pids () =
  let flex = Signaling.any_flexibility in
  let expect_error name cfg fragment =
    match Signaling.validate_config flex cfg with
    | Ok () -> Alcotest.failf "%s: expected rejection" name
    | Error msg ->
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec at i = i + ln <= lh && (String.sub hay i ln = needle || at (i + 1)) in
        at 0
      in
      check_true
        (Printf.sprintf "%s: %S mentions %S" name msg fragment)
        (contains msg fragment)
  in
  expect_error "waiter pid ≥ n"
    (Signaling.config ~n:3 ~waiters:[ 1; 3 ] ~signalers:[ 0 ])
    "waiter pid 3 out of range";
  expect_error "negative signaler pid"
    (Signaling.config ~n:3 ~waiters:[ 1 ] ~signalers:[ -1 ])
    "signaler pid -1 out of range";
  expect_error "duplicate waiter"
    (Signaling.config ~n:4 ~waiters:[ 1; 2; 1 ] ~signalers:[ 0 ])
    "waiter pid 1 listed more than once";
  expect_error "duplicate signaler"
    (Signaling.config ~n:4 ~waiters:[ 2 ] ~signalers:[ 0; 0 ])
    "signaler pid 0 listed more than once";
  check_true "waiter also a signaler is fine"
    (Signaling.validate_config flex
       (Signaling.config ~n:4 ~waiters:[ 1 ] ~signalers:[ 1 ])
    = Ok ())

let test_instantiate_rejects_bad_config () =
  let ctx = Smr.Var.Ctx.create () in
  let cfg = Signaling.config ~n:4 ~waiters:[ 1; 2 ] ~signalers:[ 0 ] in
  check_true "instantiate validates"
    (match Signaling.instantiate (module Dsm_single_waiter) ctx cfg with
    | (_ : Signaling.instance) -> false
    | exception Invalid_argument _ -> true)

let suite =
  [ case "clean history passes" test_ok_history;
    case "true before any signal flagged" test_true_without_signal;
    case "true with begun signal ok" test_true_with_overlapping_signal_ok;
    case "false after completed signal flagged" test_false_after_completed_signal;
    case "false with concurrent signal ok" test_false_with_concurrent_signal_ok;
    case "pending polls not judged" test_unfinished_poll_ignored;
    case "blocking checker" test_blocking_checker;
    case "config validation" test_validate_config;
    case "config validation rejects bad pids" test_validate_config_pids;
    case "instantiate validates config" test_instantiate_rejects_bad_config ]
