(* Tests for group mutual exclusion: the checker itself, safety of both
   algorithms under many schedules, and the concurrency that separates a
   real GME algorithm from the mutex reduction. *)

open Smr
open Test_util

let algorithms : (module Sync.Gme_intf.GME) list =
  [ (module Sync.Gme_mutex);
    (module Sync.Gme_session_lock);
    (module Sync.Gme_lightswitch.As_gme) ]

let dsm layout = Cost_model.dsm layout

let cc _layout = Cc.model ~n:0 ()

let run (module G : Sync.Gme_intf.GME) ~n ~entries ?sessions ?session_of ~policy () =
  Sync.Gme_runner.run (module G) ~model_of:dsm ~n ~entries ?sessions ?session_of
    ~policy ()

(* --- checker unit tests on synthetic call lists --- *)

let mk_call ~pid ~label ~started ?finished () =
  { History.c_pid = pid;
    c_label = label;
    c_seq = 0;
    c_started = started;
    c_finished = finished;
    c_result = Some 0;
    c_rmrs = 0;
    c_steps = 0 }

let enter ~pid ~session ~started ~finished =
  mk_call ~pid ~label:(Sync.Gme_intf.enter_label ~session) ~started ~finished ()

let exits ~pid ~started ~finished =
  mk_call ~pid ~label:Sync.Gme_intf.exit_label ~started ~finished ()

let test_checker_disjoint_ok () =
  let calls =
    [ enter ~pid:0 ~session:0 ~started:0 ~finished:1;
      exits ~pid:0 ~started:2 ~finished:3;
      enter ~pid:1 ~session:1 ~started:4 ~finished:5;
      exits ~pid:1 ~started:6 ~finished:7 ]
  in
  check_true "sequential different sessions fine" (Sync.Gme_intf.is_safe calls);
  check_int "no overlap" 1 (Sync.Gme_intf.max_concurrency calls)

let test_checker_same_session_overlap_ok () =
  let calls =
    [ enter ~pid:0 ~session:3 ~started:0 ~finished:1;
      enter ~pid:1 ~session:3 ~started:0 ~finished:2;
      exits ~pid:0 ~started:5 ~finished:6;
      exits ~pid:1 ~started:7 ~finished:8 ]
  in
  check_true "same-session overlap allowed" (Sync.Gme_intf.is_safe calls);
  check_int "concurrency two" 2 (Sync.Gme_intf.max_concurrency calls)

let test_checker_cross_session_overlap_flagged () =
  let calls =
    [ enter ~pid:0 ~session:0 ~started:0 ~finished:1;
      enter ~pid:1 ~session:1 ~started:0 ~finished:2;
      exits ~pid:0 ~started:5 ~finished:6;
      exits ~pid:1 ~started:7 ~finished:8 ]
  in
  check_false "cross-session overlap flagged" (Sync.Gme_intf.is_safe calls)

let test_checker_unfinished_occupancy () =
  (* A process that never exits occupies forever. *)
  let calls =
    [ enter ~pid:0 ~session:0 ~started:0 ~finished:1;
      enter ~pid:1 ~session:1 ~started:10 ~finished:11;
      exits ~pid:1 ~started:12 ~finished:13 ]
  in
  check_false "open-ended occupancy conflicts" (Sync.Gme_intf.is_safe calls)

let test_session_label_round_trip () =
  check_true "label parse"
    (Sync.Gme_intf.session_of_label (Sync.Gme_intf.enter_label ~session:7) = Some 7);
  check_true "exit not an enter" (Sync.Gme_intf.session_of_label "exit" = None)

(* --- algorithm safety --- *)

let safety_cases =
  List.concat_map
    (fun (module G : Sync.Gme_intf.GME) ->
      List.map
        (fun (pname, policy) ->
          case (Printf.sprintf "%s: safe under %s" G.name pname) (fun () ->
              let o = run (module G) ~n:6 ~entries:3 ~policy () in
              check_true "no cross-session overlap" o.Sync.Gme_runner.safe;
              check_int "all passages done" 18 o.Sync.Gme_runner.passages))
        [ ("round-robin", Schedule.Round_robin);
          ("random 5", Schedule.Random_seed 5);
          ("random 77", Schedule.Random_seed 77) ])
    algorithms

let prop_gme_safety =
  List.map
    (fun (module G : Sync.Gme_intf.GME) ->
      qcheck ~count:40
        (Printf.sprintf "%s: safe under random schedules and sessions" G.name)
        QCheck.(triple (int_range 2 8) (int_range 2 4) (int_bound 10_000))
        (fun (n, sessions, seed) ->
          let o =
            run (module G) ~n ~entries:2 ~sessions
              ~policy:(Schedule.Random_seed seed) ()
          in
          o.Sync.Gme_runner.safe))
    algorithms

(* --- concurrency: the point of GME --- *)

let test_session_lock_admits_concurrency () =
  (* Everyone requests the same session: a real GME algorithm lets them
     all in together. *)
  let o =
    run (module Sync.Gme_session_lock) ~n:8 ~entries:2
      ~session_of:(fun _ _ -> 0) ~policy:Schedule.Round_robin ()
  in
  check_true "safe" o.Sync.Gme_runner.safe;
  check_true
    (Printf.sprintf "concurrency %d > 1" o.Sync.Gme_runner.max_concurrency)
    (o.Sync.Gme_runner.max_concurrency > 1)

let test_mutex_baseline_no_concurrency () =
  let o =
    run (module Sync.Gme_mutex) ~n:8 ~entries:2 ~session_of:(fun _ _ -> 0)
      ~policy:Schedule.Round_robin ()
  in
  check_true "safe" o.Sync.Gme_runner.safe;
  check_int "never more than one inside" 1 o.Sync.Gme_runner.max_concurrency

let test_parked_waiters_admitted_together () =
  (* Two sessions alternating: when session 0 closes, all parked session-1
     waiters must enter together. *)
  let o =
    run (module Sync.Gme_session_lock) ~n:6 ~entries:3 ~sessions:2
      ~policy:(Schedule.Random_seed 11) ()
  in
  check_true "safe" o.Sync.Gme_runner.safe;
  check_true "some concurrency achieved" (o.Sync.Gme_runner.max_concurrency >= 2)

let test_lightswitch_team_rides_along () =
  (* Once the first team member holds the main lock, later same-session
     entries cost only the team mutex: concurrency reaches the team size. *)
  let o =
    run (module Sync.Gme_lightswitch.As_gme) ~n:8 ~entries:2
      ~session_of:(fun _ _ -> 0) ~policy:Schedule.Round_robin ()
  in
  check_true "safe" o.Sync.Gme_runner.safe;
  check_true
    (Printf.sprintf "team concurrency %d >= 4" o.Sync.Gme_runner.max_concurrency)
    (o.Sync.Gme_runner.max_concurrency >= 4)

let test_lightswitch_exhaustive_small () =
  (* All interleavings of two processes in different sessions. *)
  let ctx = Var.Ctx.create () in
  let module L = Sync.Gme_lightswitch.As_gme in
  let g = L.create ctx ~n:2 ~sessions:2 in
  let layout = Var.Ctx.freeze ctx in
  let script p =
    Explore.of_list
      [ ( Sync.Gme_intf.enter_label ~session:p,
          Program.map (fun () -> 0) (L.enter g p ~session:p) );
        ( Sync.Gme_intf.exit_label,
          Program.map (fun () -> 0) (L.exit g p) ) ]
  in
  let r =
    Explore.check ~max_histories:300_000 ~layout
      ~model:(Cost_model.dsm layout) ~n:2
      ~scripts:[ (0, script 0); (1, script 1) ]
      ~property:(fun sim -> Sync.Gme_intf.is_safe (Sim.calls sim))
      ()
  in
  check_true "no cross-session overlap in any interleaving"
    (r.Explore.violation = None)

let test_checker_catches_broken_gme () =
  (* A "GME" whose enter/exit do nothing: different sessions overlap and
     the checker must say so — validates the harness itself. *)
  let module Broken = struct
    let name = "broken-gme"
    let primitives = [ Smr.Op.Reads_writes ]

    type t = unit

    let create _ ~n:_ ~sessions:_ = ()
    let enter () _ ~session:_ = Smr.Program.return ()
    let exit () _ = Smr.Program.return ()
  end in
  let o =
    run (module Broken) ~n:6 ~entries:2 ~policy:(Schedule.Random_seed 3) ()
  in
  check_false "overlap detected" o.Sync.Gme_runner.safe

let test_local_spin_parking () =
  (* A parked waiter spins on its own module: its RMRs while waiting are
     bounded (the park itself costs the lock passage + O(1)). *)
  let o =
    run (module Sync.Gme_session_lock) ~n:4 ~entries:2 ~sessions:2
      ~policy:Schedule.Round_robin ()
  in
  check_true "per-passage cost bounded"
    (o.Sync.Gme_runner.avg_rmrs_per_passage < 40.)

let test_gme_exhaustive_small () =
  (* Every interleaving of two processes entering different sessions: the
     session lock never lets their occupancies overlap.  Lock spins make
     some branches truncate; the safety property is checked on all. *)
  let ctx = Var.Ctx.create () in
  let g = Sync.Gme_session_lock.create ctx ~n:2 ~sessions:2 in
  let layout = Var.Ctx.freeze ctx in
  let script p =
    Explore.of_list
      [ ( Sync.Gme_intf.enter_label ~session:p,
          Program.map (fun () -> 0) (Sync.Gme_session_lock.enter g p ~session:p) );
        ( Sync.Gme_intf.exit_label,
          Program.map (fun () -> 0) (Sync.Gme_session_lock.exit g p) ) ]
  in
  (* Bounded search: the lock spin's response sequences make the reduced
     space unbounded too, so the cap governs runtime; 2k reduced histories
     visit tens of thousands of distinct states. *)
  let r =
    Explore.check ~max_histories:2_000 ~layout
      ~model:(Cost_model.dsm layout) ~n:2
      ~scripts:[ (0, script 0); (1, script 1) ]
      ~property:(fun sim -> Sync.Gme_intf.is_safe (Sim.calls sim))
      ()
  in
  check_true "explored" (r.Explore.histories > 100);
  check_true "no cross-session overlap in any interleaving"
    (r.Explore.violation = None)

let suite =
  [ case "gme-session: exhaustive small-scope safety" test_gme_exhaustive_small;
    case "checker: disjoint occupancies" test_checker_disjoint_ok;
    case "checker: same-session overlap ok" test_checker_same_session_overlap_ok;
    case "checker: cross-session overlap flagged"
      test_checker_cross_session_overlap_flagged;
    case "checker: unfinished occupancy" test_checker_unfinished_occupancy;
    case "session label round trip" test_session_label_round_trip;
    case "session lock admits concurrency" test_session_lock_admits_concurrency;
    case "mutex baseline: concurrency 1" test_mutex_baseline_no_concurrency;
    case "parked waiters admitted together" test_parked_waiters_admitted_together;
    case "lightswitch: team rides along" test_lightswitch_team_rides_along;
    case "lightswitch: exhaustive small-scope safety" test_lightswitch_exhaustive_small;
    case "checker catches a broken GME" test_checker_catches_broken_gme;
    case "parking is local-spin" test_local_spin_parking ]
  @ safety_cases
  @ prop_gme_safety
