(* Shared helpers for the test suite. *)

open Smr

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_true msg b = Alcotest.(check bool) msg true b
let check_false msg b = Alcotest.(check bool) msg false b

let case name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* A one-process machine over a fresh context: allocate with [alloc], get
   back (sim, layout). *)
let solo_machine ?(n = 4) ?model alloc =
  let ctx = Var.Ctx.create () in
  let env = alloc ctx in
  let layout = Var.Ctx.freeze ctx in
  let model =
    match model with Some m -> m layout | None -> Cost_model.dsm layout
  in
  (Sim.create ~model ~layout ~n, layout, env)

(* Run a program to completion on process [p]; return final sim and result. *)
let run ?(p = 0) ?(label = "prog") sim program =
  Sim.run_call sim p ~label program

let run_unit ?(p = 0) ?(label = "prog") sim program =
  let sim, v = run ~p ~label sim (Program.map (fun () -> 0) program) in
  assert (v = 0);
  sim

(* Interpret a program against a pure response function, collecting the
   invocations it makes; useful for testing program combinators without a
   machine. *)
let interpret ~respond program =
  let rec go acc = function
    | Program.Return v -> (List.rev acc, v)
    | Program.Step (inv, k) -> go (inv :: acc) (k (respond inv))
  in
  go [] program

let default_cfg ~n =
  Core.Signaling.config ~n
    ~waiters:(List.init (n - 1) (fun i -> i + 1))
    ~signalers:[ 0 ]
