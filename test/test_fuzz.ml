(* Tests for the differential fuzzing lattice: determinism, agreement on
   the committed seed corpus, mutant detection, and shrinker soundness. *)

open Test_util

let corpus_cfg =
  { Fuzz.Harness.default_config with seed = 1; cases = 60 }

(* A small profile mirroring what the harness derives, for regeneration
   tests.  The harness registers the catalog itself; do it here too so
   [Case.elaborate] can resolve Entry cases. *)
let profile () =
  Core.Lint_catalog.register ();
  let algorithms =
    List.map
      (fun (module A : Core.Signaling.POLLING) -> A.name)
      Core.Experiment.polling_algorithms
  in
  let entries mutants =
    Analysis.Registry.all ~mutants ()
    |> List.filter (fun e -> e.Analysis.Registry.mutant = mutants)
    |> List.map (fun e -> e.Analysis.Registry.name)
  in
  ( { Fuzz.Gen.p_families = [ `Programs; `Script; `Entry ];
      p_algorithms = algorithms;
      p_entries = entries false },
    { Fuzz.Gen.p_families = [ `Programs; `Script; `Entry ];
      p_algorithms = algorithms;
      p_entries = entries true } )

let test_run_deterministic () =
  let r1 = Fuzz.Harness.run corpus_cfg in
  let r2 = Fuzz.Harness.run corpus_cfg in
  Alcotest.(check string)
    "identical results table bytes"
    (Core.Results.to_json r1.Fuzz.Harness.table)
    (Core.Results.to_json r2.Fuzz.Harness.table);
  check_int "identical units" r1.Fuzz.Harness.units r2.Fuzz.Harness.units

let test_seed_corpus_agrees () =
  let r = Fuzz.Harness.run corpus_cfg in
  check_int "no findings on the committed corpus" 0
    (List.length r.Fuzz.Harness.findings);
  check_int "every case ran" corpus_cfg.Fuzz.Harness.cases
    r.Fuzz.Harness.cases_run

let test_case_regenerable () =
  (* Case [i] is a function of (seed, i) alone: regenerating any index in
     isolation reproduces the streamed case, which is what makes
     [--only i] a faithful replay. *)
  let honest, _ = profile () in
  List.iter
    (fun index ->
      let a = Fuzz.Gen.gen ~profile:honest ~seed:9 ~index in
      let b = Fuzz.Gen.gen ~profile:honest ~seed:9 ~index in
      check_true "regeneration is exact" (a = b);
      check_int "index recorded" index a.Fuzz.Case.index)
    [ 0; 7; 63; 500 ]

let test_cases_elaborate () =
  (* Every generated case — any family — elaborates to a runnable, and
     every shrink candidate stays both smaller and elaborable (totality
     is what lets the shrinker propose candidates blindly). *)
  let honest, _ = profile () in
  for index = 0 to 80 do
    let c = Fuzz.Gen.gen ~profile:honest ~seed:3 ~index in
    let r = Fuzz.Case.elaborate c in
    check_true "positive process count" (r.Fuzz.Case.r_n > 0);
    List.iter
      (fun cand ->
        check_true "candidate strictly smaller"
          (Fuzz.Case.size cand < Fuzz.Case.size c);
        ignore (Fuzz.Case.elaborate cand))
      (Fuzz.Shrink.candidates c)
  done

let test_oracles_agree_pointwise () =
  (* Direct oracle evaluation (not through the harness): no Disagree on
     the committed corpus, and evaluation is deterministic. *)
  let honest, _ = profile () in
  for index = 0 to 30 do
    let c = Fuzz.Gen.gen ~profile:honest ~seed:1 ~index in
    List.iter
      (fun o ->
        if Fuzz.Oracles.applies o c then begin
          let v = Fuzz.Oracles.eval o c in
          check_true
            (Printf.sprintf "case %d agrees under %s" index
               (Fuzz.Oracles.name o))
            (match v with Fuzz.Oracles.Disagree _ -> false | _ -> true);
          check_true "verdict deterministic" (Fuzz.Oracles.eval o c = v)
        end)
      Fuzz.Oracles.all
  done

let test_mutants_caught_and_shrunk () =
  let cfg =
    { Fuzz.Harness.default_config with
      seed = 7;
      cases = 40;
      mutants = true;
      oracles = [ Fuzz.Oracles.Claims_vs_measured ] }
  in
  let r = Fuzz.Harness.run cfg in
  let hits name =
    List.exists
      (fun f ->
        match f.Fuzz.Harness.f_case.Fuzz.Case.family with
        | Fuzz.Case.Entry { entry; _ } -> entry = name
        | _ -> false)
      r.Fuzz.Harness.findings
  in
  check_true "remote-spin mutant caught" (hits "mutant-remote-spin");
  check_true "cas-flag mutant caught" (hits "mutant-cas-flag");
  List.iter
    (fun f ->
      check_true "shrunk case no larger"
        (Fuzz.Case.size f.Fuzz.Harness.f_shrunk
        <= Fuzz.Case.size f.Fuzz.Harness.f_case);
      (* The minimized case must still disagree — shrinking preserves the
         failure, it never shrinks it away. *)
      check_true "shrunk case still disagrees"
        (match
           Fuzz.Oracles.eval Fuzz.Oracles.Claims_vs_measured
             f.Fuzz.Harness.f_shrunk
         with
        | Fuzz.Oracles.Disagree _ -> true
        | _ -> false))
    r.Fuzz.Harness.findings

let test_shrink_respects_check () =
  (* Greedy minimize: result satisfies check and is never larger. *)
  let honest, _ = profile () in
  let c = Fuzz.Gen.gen ~profile:honest ~seed:5 ~index:2 in
  let check_fn c' = List.length c'.Fuzz.Case.schedule >= 3 in
  let m = Fuzz.Shrink.minimize ~check:check_fn c in
  check_true "minimum still passes check" (check_fn m);
  check_true "minimum no larger" (Fuzz.Case.size m <= Fuzz.Case.size c);
  check_int "schedule at the boundary" 3 (List.length m.Fuzz.Case.schedule)

let test_budget_is_deterministic_cutoff () =
  let cfg = { corpus_cfg with budget = Some 30_000 } in
  let r1 = Fuzz.Harness.run cfg in
  let r2 = Fuzz.Harness.run cfg in
  check_int "same truncation point" r1.Fuzz.Harness.cases_run
    r2.Fuzz.Harness.cases_run;
  check_true "budget caps the corpus"
    (r1.Fuzz.Harness.cases_run < corpus_cfg.Fuzz.Harness.cases);
  check_true "work stops near the cap" (r1.Fuzz.Harness.units <= 40_000)

let test_pct_walk_deterministic () =
  let outline (r : Core.Adversary.random_outcome) =
    ( r.Core.Adversary.ro_outcome.Core.Scenario.total_rmrs,
      r.Core.Adversary.ro_outcome.Core.Scenario.total_messages,
      List.length r.Core.Adversary.ro_outcome.Core.Scenario.violations )
  in
  let p1 = Core.Adversary.run_pct (module Core.Cc_flag) ~n:6 ~seed:11 () in
  let p2 = Core.Adversary.run_pct (module Core.Cc_flag) ~n:6 ~seed:11 () in
  check_true "pct outcome reproducible" (outline p1 = outline p2);
  check_true "no spec violation under pct"
    (p1.Core.Adversary.ro_outcome.Core.Scenario.violations = []);
  let w1 = Core.Adversary.run_walk (module Core.Dsm_queue) ~n:6 ~seed:11 () in
  let w2 = Core.Adversary.run_walk (module Core.Dsm_queue) ~n:6 ~seed:11 () in
  check_true "walk outcome reproducible" (outline w1 = outline w2);
  check_true "no spec violation under walk"
    (w1.Core.Adversary.ro_outcome.Core.Scenario.violations = [])

let suite =
  [ case "harness run is byte-deterministic" test_run_deterministic;
    case "committed seed corpus has zero findings" test_seed_corpus_agrees;
    case "cases regenerate from (seed, index)" test_case_regenerable;
    case "generation and shrink candidates elaborate" test_cases_elaborate;
    case "oracles agree pointwise on the corpus" test_oracles_agree_pointwise;
    case "lint mutants are caught and shrunk" test_mutants_caught_and_shrunk;
    case "minimize is sound for its check" test_shrink_respects_check;
    case "budget cut-off is deterministic" test_budget_is_deterministic_cutoff;
    case "pct and walk schedules are seed-reproducible"
      test_pct_walk_deterministic ]
