(* Tests for the free-monad program DSL. *)

open Smr
open Program.Syntax
open Test_util

(* A toy responder: reads return the address, everything else responds 1. *)
let respond = function
  | Op.Read a | Op.Ll a -> a
  | Op.Write _ -> 0
  | _ -> 1

let var_at ctx a =
  (* Allocate until the variable lands at a chosen small address. *)
  let rec go () =
    let v = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
    if Var.addr v >= a then v else go ()
  in
  go ()

let test_return_has_no_steps () =
  let invs, v = interpret ~respond (Program.return 42) in
  check_int "no invocations" 0 (List.length invs);
  check_int "value" 42 v

let test_bind_sequences () =
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let prog =
    let* () = Program.write x 5 in
    let* v = Program.read x in
    Program.return (v + 1)
  in
  let invs, v = interpret ~respond prog in
  check_int "two invocations" 2 (List.length invs);
  (* respond gives Read its address back *)
  check_int "result uses read response" (Var.addr x + 1) v

let test_map () =
  let prog = Program.map (fun v -> v * 2) (Program.step (Op.Read 3)) in
  let _, v = interpret ~respond prog in
  check_int "map transforms" 6 v

let test_for_ () =
  let prog = Program.for_ 1 4 (fun i -> Program.map ignore (Program.step (Op.Read i))) in
  let invs, () = interpret ~respond prog in
  check_int "four iterations" 4 (List.length invs);
  check_true "in order"
    (List.map Op.addr_of invs = [ 1; 2; 3; 4 ])

let test_for_empty () =
  let invs, () =
    interpret ~respond (Program.for_ 3 2 (fun _ -> Program.return ()))
  in
  check_int "empty range runs nothing" 0 (List.length invs)

let test_seq () =
  let mk a = Program.map ignore (Program.step (Op.Read a)) in
  let invs, () = interpret ~respond (Program.seq [ mk 1; mk 2; mk 3 ]) in
  check_true "sequence order" (List.map Op.addr_of invs = [ 1; 2; 3 ])

let test_when_ () =
  let body = Program.map ignore (Program.step (Op.Read 0)) in
  let invs_t, () = interpret ~respond (Program.when_ true body) in
  let invs_f, () = interpret ~respond (Program.when_ false body) in
  check_int "when true runs" 1 (List.length invs_t);
  check_int "when false skips" 0 (List.length invs_f)

let test_repeat_until () =
  (* Stop after the third iteration: responses are scripted. *)
  let counter = ref 0 in
  let respond _ =
    incr counter;
    if !counter >= 3 then 1 else 0
  in
  let body = Program.map (fun v -> v = 1) (Program.step (Op.Read 0)) in
  let invs, () = interpret ~respond (Program.repeat_until body) in
  check_int "three iterations" 3 (List.length invs)

let test_await () =
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let counter = ref 0 in
  let respond _ =
    incr counter;
    !counter
  in
  let invs, () = interpret ~respond (Program.await x (fun v -> v >= 5)) in
  check_int "spins until predicate" 5 (List.length invs)

let test_typed_ops_round_trip () =
  let ctx = Var.Ctx.create () in
  let b = Var.Ctx.bool ctx ~name:"b" ~home:Var.Shared false in
  let w = Var.Ctx.pid_opt ctx ~name:"w" ~home:Var.Shared None in
  (* bool decode *)
  let _, v = interpret ~respond:(fun _ -> 1) (Program.read b) in
  check_true "bool decode true" v;
  let _, v = interpret ~respond:(fun _ -> 0) (Program.read b) in
  check_false "bool decode false" v;
  (* pid_opt decode *)
  let _, v = interpret ~respond:(fun _ -> -1) (Program.read w) in
  check_true "pid None" (v = None);
  let _, v = interpret ~respond:(fun _ -> 3) (Program.read w) in
  check_true "pid Some" (v = Some 3);
  (* writes encode *)
  let invs, () = interpret ~respond (Program.write w (Some 5)) in
  check_true "pid encode" (invs = [ Op.Write (Var.addr w, 5) ]);
  let invs, () = interpret ~respond (Program.write w None) in
  check_true "NIL encode" (invs = [ Op.Write (Var.addr w, -1) ])

let test_cas_bool_result () =
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let _, ok =
    interpret ~respond:(fun _ -> 1) (Program.cas x ~expected:0 ~update:1)
  in
  check_true "cas success decodes true" ok;
  let _, ok =
    interpret ~respond:(fun _ -> 0) (Program.cas x ~expected:0 ~update:1)
  in
  check_false "cas failure decodes false" ok

let test_length_exn () =
  let prog = Program.for_ 1 10 (fun i -> Program.map ignore (Program.step (Op.Read i))) in
  check_int "length" 10 (Program.length_exn ~respond prog);
  let spin = Program.await (var_at (Var.Ctx.create ()) 0) (fun v -> v > 0) in
  Alcotest.check_raises "unbounded program exhausts fuel"
    (Invalid_argument "Program.length_exn: out of fuel")
    (fun () -> ignore (Program.length_exn ~fuel:100 ~respond:(fun _ -> 0) spin))

let test_next_invocation () =
  check_true "return has none" (Program.next_invocation (Program.return 1) = None);
  check_true "step exposes op"
    (Program.next_invocation (Program.step (Op.Read 5)) = Some (Op.Read 5))

let prop_bind_assoc =
  (* (m >>= f) >>= g behaves as m >>= (fun x -> f x >>= g) under any
     responder: same invocation trace and result. *)
  qcheck "bind is associative (observably)"
    QCheck.(small_list (int_bound 7))
    (fun addrs ->
      let m = Program.step (Op.Read 0) in
      let f v = Program.step (Op.Read (v mod 8)) in
      let g v =
        List.fold_left
          (fun acc a -> Program.bind acc (fun _ -> Program.step (Op.Read a)))
          (Program.return v) addrs
      in
      let lhs = Program.bind (Program.bind m f) g in
      let rhs = Program.bind m (fun x -> Program.bind (f x) g) in
      interpret ~respond lhs = interpret ~respond rhs)

let suite =
  [ case "return has no steps" test_return_has_no_steps;
    case "bind sequences" test_bind_sequences;
    case "map" test_map;
    case "for_" test_for_;
    case "for_ empty range" test_for_empty;
    case "seq" test_seq;
    case "when_" test_when_;
    case "repeat_until" test_repeat_until;
    case "await spins until predicate" test_await;
    case "typed encode/decode round trip" test_typed_ops_round_trip;
    case "cas result decoding" test_cas_bool_result;
    case "length_exn" test_length_exn;
    case "next_invocation" test_next_invocation;
    prop_bind_assoc ]
