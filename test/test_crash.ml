(* Crash-failure tests: the paper's safety properties are crash-tolerant
   (a crashed call is simply never judged), and the simulator's crash
   bookkeeping behaves. *)

open Smr
open Test_util
open Core

let test_crash_lifecycle () =
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:2 in
  let prog =
    Program.Syntax.(
      let* _ = Program.read x in
      Program.step (Op.Read (Var.addr x)))
  in
  let sim = Sim.begin_call sim 0 ~label:"f" prog in
  let sim = Sim.advance sim 0 in
  let sim = Sim.crash sim 0 in
  check_true "terminated" (Sim.is_terminated sim 0);
  (match Sim.calls_of sim 0 with
  | [ c ] ->
    check_true "call recorded unfinished" (c.History.c_finished = None);
    check_true "no result" (c.History.c_result = None);
    check_int "steps before crash counted" 1 c.History.c_steps
  | _ -> Alcotest.fail "expected one recorded call");
  Alcotest.check_raises "no resurrection"
    (Invalid_argument "Sim.begin_call: process terminated") (fun () ->
      ignore (Sim.begin_call sim 0 ~label:"g" (Program.return 0)))

let test_last_result_after_crash () =
  (* Regression: [last_result] used to return the most recent call's
     result slot even when that call crashed mid-flight, surfacing the
     *previous* call's answer as if it were current.  A crashed latest
     call must yield [None]. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 7 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:1 in
  let sim, r = Sim.run_call sim 0 ~label:"first" (Program.step (Op.Read (Var.addr x))) in
  check_int "first call completed" 7 r;
  check_true "completed call's result visible" (Sim.last_result sim 0 = Some 7);
  let sim =
    Sim.begin_call sim 0 ~label:"second" (Program.step (Op.Read (Var.addr x)))
  in
  let sim = Sim.crash sim 0 in
  check_true "crashed latest call yields None, not the prior result"
    (Sim.last_result sim 0 = None);
  check_int "both calls recorded" 2 (List.length (Sim.calls_of sim 0))

let test_crash_idle_process () =
  let ctx = Var.Ctx.create () in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:1 in
  let sim = Sim.crash sim 0 in
  check_true "idle crash terminates" (Sim.is_terminated sim 0);
  check_int "no call recorded" 0 (List.length (Sim.calls_of sim 0))

let test_crashed_call_not_judged () =
  (* A waiter crashes mid-poll; the spec checker must ignore the pending
     call. *)
  let ctx = Var.Ctx.create () in
  let cfg = Signaling.config ~n:4 ~waiters:[ 1; 2 ] ~signalers:[ 0 ] in
  let inst = Signaling.instantiate (module Dsm_registration) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:4 in
  let sim =
    Sim.begin_call sim 1 ~label:Signaling.poll_label (inst.Signaling.i_poll 1)
  in
  let sim = Sim.advance sim 1 in
  let sim = Sim.crash sim 1 in
  let sim, _ =
    Sim.run_call sim 0 ~label:Signaling.signal_label (inst.Signaling.i_signal 0)
  in
  check_int "no violations with a crashed waiter" 0
    (List.length (Signaling.check_polling (Sim.calls sim)))

(* Random crash injection: under arbitrary waiter crashes at arbitrary
   points, every algorithm still satisfies Specification 4.1, and the
   surviving waiters still learn the signal. *)
let prop_crash_injection (module A : Signaling.POLLING) =
  qcheck ~count:40
    (Printf.sprintf "%s: spec holds under random waiter crashes" A.name)
    QCheck.(triple (int_range 3 10) (int_bound 100_000) (int_bound 1000))
    (fun (n, seed, crash_roll) ->
      let ctx = Var.Ctx.create () in
      let cfg = Experiment.config_for (module A) ~n in
      let inst = Signaling.instantiate (module A) ctx cfg in
      let layout = Var.Ctx.freeze ctx in
      let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n in
      let rng = Random.State.make [| seed; crash_roll |] in
      let signaled = ref false in
      let behavior sim p : Schedule.action =
        if p = 0 then
          if !signaled then Stop
          else if Sim.clock sim >= 40 then begin
            signaled := true;
            Start (Signaling.signal_label, inst.Signaling.i_signal 0)
          end
          else Pause
        else
          match Sim.last_result sim p with
          | Some 1 -> Stop
          | Some 0 | None ->
            Start (Signaling.poll_label, inst.Signaling.i_poll p)
          | Some _ -> assert false
      in
      (* Interleave normally, but crash a random waiter at a random time
         (possibly mid-call). *)
      let crash_victim = 1 + Random.State.int rng (n - 1) in
      let crash_at = Random.State.int rng 60 in
      let pids = List.init n Fun.id in
      let rec drive sim budget crashed =
        if budget = 0 then sim
        else
          let sim, crashed =
            if (not crashed) && Sim.clock sim >= crash_at
               && not (Sim.is_terminated sim crash_victim) then
              (Sim.crash sim crash_victim, true)
            else (sim, crashed)
          in
          let p = List.nth pids (Random.State.int rng n) in
          let sim =
            if Sim.is_terminated sim p then sim
            else
              match Sim.proc_state sim p with
              | Sim.Running _ -> Sim.advance sim p
              | Sim.Idle -> (
                match behavior sim p with
                | Schedule.Start (label, prog) -> Sim.begin_call sim p ~label prog
                | Schedule.Stop -> Sim.terminate sim p
                | Schedule.Pause -> sim)
              | Sim.Terminated -> sim
          in
          drive sim (budget - 1) crashed
      in
      let sim = drive sim 3000 false in
      Signaling.check_polling (Sim.calls sim) = [])

let crash_props =
  List.map prop_crash_injection
    [ (module Cc_flag : Signaling.POLLING);
      (module Dsm_broadcast);
      (module Dsm_registration);
      (module Dsm_queue);
      (module Cas_register) ]

let test_crash_during_signal_safe () =
  (* The signaler crashes mid-Signal(): some waiters may be flagged and
     others not.  Safety requires only that no Poll() returns true before
     the signal began — which it did — and no Poll() returns false after a
     COMPLETED signal — it never completed.  Both true/false answers are
     legal afterwards. *)
  let ctx = Var.Ctx.create () in
  let cfg = Signaling.config ~n:6 ~waiters:[ 1; 2; 3; 4; 5 ] ~signalers:[ 0 ] in
  let inst = Signaling.instantiate (module Dsm_broadcast) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:6 in
  let sim =
    Sim.begin_call sim 0 ~label:Signaling.signal_label (inst.Signaling.i_signal 0)
  in
  (* Deliver the flag to waiters 1 and 2 only, then crash. *)
  let sim = Sim.advance sim 0 in
  let sim = Sim.advance sim 0 in
  let sim = Sim.advance sim 0 in
  let sim = Sim.crash sim 0 in
  let sim, r1 =
    Sim.run_call sim 1 ~label:Signaling.poll_label (inst.Signaling.i_poll 1)
  in
  let sim, r5 =
    Sim.run_call sim 5 ~label:Signaling.poll_label (inst.Signaling.i_poll 5)
  in
  check_int "flagged waiter sees true" 1 r1;
  check_int "unflagged waiter still false" 0 r5;
  check_int "and the history is spec-clean" 0
    (List.length (Signaling.check_polling (Sim.calls sim)))

let test_crash_in_critical_section_blocks_lock () =
  (* Blocking synchronization is not crash-tolerant: a holder that crashes
     inside the critical section wedges every contender — which is exactly
     why the paper's progress notion (terminating) quantifies only over
     crash-free fair histories. *)
  let ctx = Var.Ctx.create () in
  let lock = Sync.Mcs_lock.create ctx ~n:2 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:2 in
  let acquire p = Program.map (fun () -> 0) (Sync.Mcs_lock.acquire lock p) in
  let sim, _ = Sim.run_call sim 0 ~label:"acq" (acquire 0) in
  let sim = Sim.crash sim 0 (* crash while holding the lock *) in
  let sim = Sim.begin_call sim 1 ~label:"acq" (acquire 1) in
  let sim = List.fold_left (fun sim () -> Sim.advance sim 1) sim (List.init 500 (fun _ -> ())) in
  check_true "contender spins forever" (Sim.is_running sim 1)

let suite =
  [ case "crash lifecycle" test_crash_lifecycle;
    case "last_result ignores a crashed latest call" test_last_result_after_crash;
    case "crash in critical section wedges the lock"
      test_crash_in_critical_section_blocks_lock;
    case "crash while idle" test_crash_idle_process;
    case "crashed call not judged" test_crashed_call_not_judged;
    case "crash during signal is safe" test_crash_during_signal_safe ]
  @ crash_props
