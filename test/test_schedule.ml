(* Tests for the scheduling drivers. *)

open Smr
open Test_util

let machine ~n =
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  (Sim.create ~model:(Cost_model.dsm layout) ~layout ~n, x)

let incr_prog x =
  Program.map (fun _ -> 0) (Program.step (Op.Faa (Var.addr x, 1)))

let test_script_runs_in_order () =
  let sim, x = machine ~n:2 in
  let behavior =
    Schedule.script
      [ (0, [ ("a", incr_prog x); ("b", incr_prog x) ]);
        (1, [ ("c", incr_prog x) ]) ]
  in
  let sim =
    Schedule.run ~policy:Schedule.Round_robin ~behavior ~pids:[ 0; 1 ] sim
  in
  check_int "three increments" 3 (Memory.get (Sim.memory sim) (Var.addr x));
  check_true "all terminated"
    (Sim.is_terminated sim 0 && Sim.is_terminated sim 1);
  check_int "p0 made two calls" 2 (List.length (Sim.calls_of sim 0))

let test_random_is_deterministic_per_seed () =
  let run seed =
    let sim, x = machine ~n:4 in
    let behavior =
      Schedule.script
        (List.init 4 (fun p -> (p, [ ("a", incr_prog x); ("b", incr_prog x) ])))
    in
    let sim =
      Schedule.run ~policy:(Schedule.Random_seed seed) ~behavior
        ~pids:[ 0; 1; 2; 3 ] sim
    in
    List.map (fun (s : History.step) -> s.History.pid) (Sim.steps sim)
  in
  check_true "same seed, same history" (run 7 = run 7);
  check_true "all increments happen" (List.length (run 7) = 8)

let test_random_completes_despite_terminated_majority () =
  (* One slow process among many already-stopped ones: the driver must not
     give up (regression test for the stuck heuristic). *)
  let sim, x = machine ~n:8 in
  let behavior =
    Schedule.script
      ((0, List.init 20 (fun i -> (Printf.sprintf "c%d" i, incr_prog x)))
      :: List.init 7 (fun p -> (p + 1, [])))
  in
  let sim =
    Schedule.run ~policy:(Schedule.Random_seed 3) ~behavior
      ~pids:(List.init 8 Fun.id) sim
  in
  check_int "all twenty calls ran" 20 (Memory.get (Sim.memory sim) (Var.addr x))

let test_pause_only_ends_run () =
  let sim, _ = machine ~n:2 in
  let behavior _ _ : Schedule.action = Pause in
  let sim =
    Schedule.run ~policy:(Schedule.Random_seed 1) ~behavior ~pids:[ 0; 1 ] sim
  in
  check_true "nothing happened" (Sim.steps sim = [])

let test_fixed_policy () =
  let sim, x = machine ~n:2 in
  let behavior = Schedule.script [ (0, [ ("a", incr_prog x) ]); (1, [ ("b", incr_prog x) ]) ] in
  (* Poke p1 twice (begin + step is one poke each... begin starts the call,
     second poke advances it), then p0. *)
  let sim =
    Schedule.run ~policy:(Schedule.Fixed [ 1; 1; 0; 0 ]) ~behavior ~pids:[ 0; 1 ]
      sim
  in
  match Sim.steps sim with
  | [ s1; s2 ] ->
    check_int "p1 stepped first" 1 s1.History.pid;
    check_int "p0 stepped second" 0 s2.History.pid;
    ignore s2
  | steps -> Alcotest.fail (Printf.sprintf "expected 2 steps, got %d" (List.length steps))

let suite =
  [ case "script runs in order" test_script_runs_in_order;
    case "random schedule deterministic per seed" test_random_is_deterministic_per_seed;
    case "random survives terminated majority" test_random_completes_despite_terminated_majority;
    case "pause-only run ends" test_pause_only_ends_run;
    case "fixed policy" test_fixed_policy ]
