(* Observability layer: traces are deterministic, never perturb the run
   they observe, and their derived metrics agree with the scenario's own
   accounting. *)

open Smr
open Test_util

let alg name = Option.get (Core.Experiment.find_algorithm name)

(* Run one phased scenario with a fresh trace attached; return both. *)
let traced ?(model = `Dsm) ?(n = 4) name =
  let m = alg name in
  let module A = (val m : Core.Signaling.POLLING) in
  let tr = Obs.Trace.create () in
  let cfg = Core.Experiment.config_for m ~n in
  let o = Core.Scenario.run_phased (module A) ~model ~cfg ~tracer:tr () in
  (tr, o)

let untraced ?(model = `Dsm) ?(n = 4) name =
  let m = alg name in
  let module A = (val m : Core.Signaling.POLLING) in
  let cfg = Core.Experiment.config_for m ~n in
  Core.Scenario.run_phased (module A) ~model ~cfg ()

(* --- acceptance: metrics agree with the scenario's accounting --- *)

let test_rmr_total_matches_outcome () =
  List.iter
    (fun (name, model, tag) ->
      let tr, o = traced ~model name in
      let total =
        Obs.Metrics.total (Obs.Trace.metrics tr) "rmr_total"
      in
      check_int
        (Printf.sprintf "%s/%s: sum of rmr_total over labels = total_rmrs"
           name tag)
        o.Core.Scenario.total_rmrs (int_of_float total))
    [ ("cc-flag", `Dsm, "dsm"); ("cc-flag", `Cc_wt, "cc-wt");
      ("dsm-broadcast", `Dsm, "dsm"); ("dsm-queue", `Cc_wb, "cc-wb") ]

let test_messages_total_matches_outcome () =
  let tr, o = traced ~model:`Cc_wt "cc-flag" in
  check_int "sum of messages_total = total_messages"
    o.Core.Scenario.total_messages
    (int_of_float (Obs.Metrics.total (Obs.Trace.metrics tr) "messages_total"))

(* --- acceptance: observation never perturbs the run --- *)

let test_tracing_does_not_perturb () =
  List.iter
    (fun (name, model) ->
      let _, o = traced ~model name in
      let o' = untraced ~model name in
      check_int "total_rmrs unchanged" o'.Core.Scenario.total_rmrs
        o.Core.Scenario.total_rmrs;
      check_int "total_messages unchanged" o'.Core.Scenario.total_messages
        o.Core.Scenario.total_messages;
      check_true "identical step-level history"
        (Sim.steps o.Core.Scenario.sim = Sim.steps o'.Core.Scenario.sim);
      check_true "no violations introduced"
        (o.Core.Scenario.violations = o'.Core.Scenario.violations))
    [ ("cc-flag", `Dsm); ("cc-flag", `Cc_wt); ("dsm-broadcast", `Dsm) ]

(* --- determinism: rendering is independent of the parallel map --- *)

let test_render_jobs_deterministic () =
  let tr, _ = traced ~model:`Cc_wt "cc-flag" in
  let evs = Obs.Trace.events tr in
  let pmap f xs = Core.Parallel.map ~jobs:2 f xs in
  Alcotest.(check string) "jsonl identical under parallel map"
    (Obs.Sink_jsonl.to_string evs)
    (Obs.Sink_jsonl.to_string ~map:pmap evs);
  Alcotest.(check string) "chrome identical under parallel map"
    (Obs.Sink_chrome.to_string evs)
    (Obs.Sink_chrome.to_string ~map:pmap evs);
  Alcotest.(check string) "text identical under parallel map"
    (Obs.Sink_text.to_string evs)
    (Obs.Sink_text.to_string ~map:pmap evs)

(* --- golden: the JSONL stream is pinned byte-for-byte --- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_chrome_edge_goldens () =
  (* Fixtures written by gen.exe — regenerate after an intentional schema
     change.  Edge cases: the empty stream, a single event (exactly its
     own track metadata, no stray lanes), and two pids sharing one tick
     (emission order preserved), for both the machine tracks and the
     flat-path cells track group. *)
  Alcotest.(check string) "empty stream renders a loadable document"
    (read_file "golden/chrome_empty.json")
    (Obs.Sink_chrome.to_string []);
  let single =
    [ Obs.Event.Op_step
        { t = 1; pid = 0; kind = "write"; addr = 0; var = "B";
          home = Obs.Event.Shared; response = 1; wrote = true; rmr = true;
          messages = 1; model = "cc-wt"; call_seq = 0 } ]
  in
  Alcotest.(check string) "single event, single lane"
    (read_file "golden/chrome_single.json")
    (Obs.Sink_chrome.to_string single);
  let same_tick =
    [ Obs.Event.Op_step
        { t = 3; pid = 0; kind = "write"; addr = 0; var = "B";
          home = Obs.Event.Shared; response = 1; wrote = true; rmr = true;
          messages = 1; model = "cc-wt"; call_seq = 0 };
      Obs.Event.Op_step
        { t = 3; pid = 1; kind = "read"; addr = 0; var = "B";
          home = Obs.Event.Shared; response = 1; wrote = false;
          rmr = false; messages = 0; model = "cc-wt"; call_seq = 2 } ]
  in
  Alcotest.(check string) "two pids at one tick keep emission order"
    (read_file "golden/chrome_two_pids_same_tick.json")
    (Obs.Sink_chrome.to_string same_tick);
  Alcotest.(check string) "cells track group (flat-path export)"
    (read_file "golden/chrome_cells.json")
    (Obs.Sink_chrome.cells_to_string
       ~cell_name:(Printf.sprintf "B (a%d)")
       [ { Obs.Sink_chrome.ce_t = 2; ce_pid = 0; ce_addr = 0;
           ce_action = "invalidate"; ce_messages = 3 };
         { Obs.Sink_chrome.ce_t = 2; ce_pid = 1; ce_addr = 1;
           ce_action = "fetch"; ce_messages = 1 };
         { Obs.Sink_chrome.ce_t = 5; ce_pid = 2; ce_addr = 0;
           ce_action = "roundtrip"; ce_messages = 1 } ]);
  (* And the cells sink on the degenerate inputs. *)
  check_true "empty cells document still parses as a trace doc"
    (String.length (Obs.Sink_chrome.cells_to_string []) > 0)

let test_jsonl_golden () =
  (* Must match `separation trace -a cc-flag -n 4 --format jsonl` (CI
     diffs the CLI output against the same fixture).  Regenerate with
     `dune exec test/golden/gen.exe` after an intentional schema change. *)
  let tr, _ = traced ~model:`Dsm ~n:4 "cc-flag" in
  Alcotest.(check string) "trace_cc_flag.jsonl byte-identical"
    (read_file "golden/trace_cc_flag.jsonl")
    (Obs.Sink_jsonl.to_string (Obs.Trace.events tr))

(* --- schema coverage per instrumented layer --- *)

let count_by pred tr = List.length (List.filter pred (Obs.Trace.events tr))

let test_cc_emits_cache_events () =
  let tr, _ = traced ~model:`Cc_wt "cc-flag" in
  let caches =
    count_by (function Obs.Event.Cache _ -> true | _ -> false) tr
  in
  check_true "write-through bus run emits coherence events" (caches > 0);
  check_true "coherence_messages_total accumulated"
    (Obs.Metrics.total (Obs.Trace.metrics tr) "coherence_messages_total" > 0.);
  (* DSM has no coherence traffic to report. *)
  let tr', _ = traced ~model:`Dsm "cc-flag" in
  check_int "dsm run emits no cache events" 0
    (count_by (function Obs.Event.Cache _ -> true | _ -> false) tr')

let test_call_events_balanced () =
  let tr, o = traced ~model:`Dsm "cc-flag" in
  let begins =
    count_by (function Obs.Event.Call_begin _ -> true | _ -> false) tr
  and ends =
    count_by (function Obs.Event.Call_end _ -> true | _ -> false) tr
  and crashes =
    count_by (function Obs.Event.Call_crash _ -> true | _ -> false) tr
  in
  check_int "every call that begins ends (crash-free run)" begins
    (ends + crashes);
  check_int "no crashes in a phased run" 0 crashes;
  check_int "one call record per begin event" begins
    (List.length (Sim.calls o.Core.Scenario.sim))

let test_adversary_traced () =
  let m = alg "cc-flag" in
  let module A = (val m : Core.Signaling.POLLING) in
  let tr = Obs.Trace.create () in
  let r = Core.Adversary.run (module A) ~n:8 ~tracer:tr ~max_rounds:6 () in
  check_false "construction ran clean" r.Core.Adversary.spec_violated;
  check_true "adversary decisions recorded"
    (count_by (function Obs.Event.Adversary _ -> true | _ -> false) tr > 0);
  check_true "decision counters accumulated"
    (Obs.Metrics.total (Obs.Trace.metrics tr) "adversary_decisions_total" > 0.);
  (* Erasure replays re-execute surviving steps on a silent machine: the
     trace keeps the live (pre-erasure) stream and gains no duplicates,
     so it can only hold at least as many op events as surviving steps. *)
  check_true "no duplicate op events from replay"
    (count_by (function Obs.Event.Op_step _ -> true | _ -> false) tr
    >= List.length (Sim.steps r.Core.Adversary.final_sim))

let small_explore ~tracer ~jobs =
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let incr_x =
    Program.Syntax.(
      let* v = Program.read x in
      let* () = Program.write x (v + 1) in
      Program.return (v + 1))
  in
  Explore.check ?tracer ~jobs ~layout
    ~model:(Cost_model.dsm layout) ~n:2
    ~scripts:
      [ (0, Explore.of_list [ ("inc", incr_x) ]);
        (1, Explore.of_list [ ("inc", incr_x) ]) ]
    ~property:(fun _ -> true) ()

let test_explore_spans () =
  let tr = Obs.Trace.create () in
  let r = small_explore ~tracer:(Some tr) ~jobs:1 in
  let spans =
    List.filter
      (function Obs.Event.Explore_task _ -> true | _ -> false)
      (Obs.Trace.events tr)
  in
  check_int "one span per subtree task" r.Explore.stats.Explore.tasks
    (List.length spans);
  (* Spans are emitted post-parallel in task order with synthetic ticks,
     so the stream is identical at any jobs level. *)
  let tr2 = Obs.Trace.create () in
  let _ = small_explore ~tracer:(Some tr2) ~jobs:2 in
  check_true "explore trace byte-identical across jobs"
    (Obs.Sink_jsonl.to_string (Obs.Trace.events tr)
    = Obs.Sink_jsonl.to_string (Obs.Trace.events tr2))

let test_runner_spans () =
  let specs =
    [ Core.Experiment_registry.find_exn "e1";
      Core.Experiment_registry.find_exn "e5" ]
  in
  let tr = Obs.Trace.create () in
  let outcomes =
    Core.Runner.run ~jobs:1 ~tracer:tr ~size:Core.Experiment_def.Reduced specs
  in
  let spans =
    List.filter_map
      (function
        | Obs.Event.Runner_span { experiment; _ } -> Some experiment
        | _ -> None)
      (Obs.Trace.events tr)
  in
  Alcotest.(check (list string)) "one span per experiment, in spec order"
    [ "e1"; "e5" ] spans;
  check_int "outcomes match specs" 2 (List.length outcomes)

(* --- the latch: a disabled trace stays empty, a detached sim is silent --- *)

let test_disabled_is_silent () =
  let o = untraced "cc-flag" in
  check_true "untraced sim holds no tracer"
    (Sim.tracer o.Core.Scenario.sim = None);
  let tr = Obs.Trace.create () in
  Obs.Trace.emit_if_armed tr
    (Obs.Event.Adversary { t = 0; decision = "x"; pid = 0; detail = "" });
  check_int "emit_if_armed without arm drops the event" 0
    (Obs.Trace.length tr)

let suite =
  [
    case "rmr_total sums to outcome total_rmrs" test_rmr_total_matches_outcome;
    case "messages_total sums to outcome total_messages"
      test_messages_total_matches_outcome;
    case "tracing does not perturb the run" test_tracing_does_not_perturb;
    case "sink rendering independent of parallel map"
      test_render_jobs_deterministic;
    case "jsonl golden fixture" test_jsonl_golden;
    case "chrome sink edge-case goldens" test_chrome_edge_goldens;
    case "cc models emit cache events, dsm none" test_cc_emits_cache_events;
    case "call begin/end events balanced" test_call_events_balanced;
    case "adversary decisions traced, replays silent" test_adversary_traced;
    case "explore spans per task, jobs-deterministic" test_explore_spans;
    case "runner spans in spec order" test_runner_spans;
    case "disabled tracing is silent" test_disabled_is_silent;
  ]
