(* Tests for the semi-synchronous model and Fischer's timing-based lock
   (paper, Section 3 context), and for finite-capacity caches (Section 8). *)

open Smr
open Test_util

(* --- the semi-sync scheduler itself --- *)

let test_semi_sync_step_gap_bound () =
  (* Two long-running processes: under Semi_sync, the gap between a
     process's consecutive steps never exceeds delta. *)
  let ctx = Var.Ctx.create () in
  let xs =
    Array.init 3 (fun i ->
        Var.Ctx.int ctx ~name:(Printf.sprintf "x%d" i) ~home:(Var.Module i) 0)
  in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:3 in
  let prog p =
    Program.map (fun () -> 0)
      (Program.for_ 1 30 (fun i -> Program.write xs.(p) i))
  in
  let behavior sim p : Schedule.action =
    if Sim.last_result sim p = None then Start ("w", prog p) else Stop
  in
  let delta = 4 in
  let sim =
    Schedule.run
      ~policy:(Schedule.Semi_sync { delta; seed = 9 })
      ~behavior ~pids:[ 0; 1; 2 ] sim
  in
  (* Reconstruct per-process step times and check consecutive gaps.  The
     bound applies while a process has a pending step, i.e. between steps
     of the same call. *)
  let by_pid = Hashtbl.create 4 in
  List.iter
    (fun (s : History.step) ->
      Hashtbl.replace by_pid s.History.pid
        (s.History.time
        :: Option.value ~default:[] (Hashtbl.find_opt by_pid s.History.pid)))
    (Sim.steps sim);
  Hashtbl.iter
    (fun p times ->
      let ordered = List.sort compare times in
      let rec gaps = function
        | a :: (b :: _ as rest) ->
          check_true
            (Printf.sprintf "p%d gap %d-%d within 2*delta" p a b)
            (b - a <= (2 * delta) + 2);
          gaps rest
        | _ -> ()
      in
      gaps ordered)
    by_pid;
  check_true "everyone finished"
    (List.for_all (fun p -> Sim.last_result sim p = Some 0) [ 0; 1; 2 ])

let test_semi_sync_completes_scripts () =
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:4 in
  let behavior =
    Schedule.script
      (List.init 4 (fun p ->
           (p, [ ("w", Program.map (fun _ -> 0) (Program.step (Op.Faa (Var.addr x, 1)))) ])))
  in
  let sim =
    Schedule.run
      ~policy:(Schedule.Semi_sync { delta = 3; seed = 2 })
      ~behavior ~pids:[ 0; 1; 2; 3 ] sim
  in
  check_int "all four increments" 4 (Memory.get (Sim.memory sim) (Var.addr x))

(* --- Fischer's lock --- *)

let run_fischer ~n ~delay ~policy =
  Sync.Lock_runner.run
    (Sync.Fischer_lock.with_delay delay)
    ~model_of:Cost_model.dsm ~n ~entries:2 ~policy ()

let test_fischer_safe_under_semi_sync () =
  List.iter
    (fun seed ->
      let delta = 4 in
      let o =
        run_fischer ~n:4 ~delay:((2 * delta) + 4)
          ~policy:(Schedule.Semi_sync { delta; seed })
      in
      check_true
        (Printf.sprintf "seed %d: mutual exclusion held" seed)
        o.Sync.Lock_runner.mutual_exclusion_held)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_fischer_violable_async () =
  (* With a tiny delay and asynchronous scheduling, some seed breaks it. *)
  let broken =
    List.exists
      (fun seed ->
        let o = run_fischer ~n:4 ~delay:1 ~policy:(Schedule.Random_seed seed) in
        not o.Sync.Lock_runner.mutual_exclusion_held)
      (List.init 20 (fun i -> i + 1))
  in
  check_true "asynchrony defeats the timing assumption" broken

let test_fischer_forced_overlap_is_deterministic () =
  (* The canonical violation (E11's construction) must reproduce for any
     delay: under full asynchrony the second writer always self-certifies. *)
  List.iter
    (fun delay ->
      let ctx = Var.Ctx.create () in
      let lock = Sync.Fischer_lock.create_timed ctx ~n:2 ~delay in
      let layout = Var.Ctx.freeze ctx in
      let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:2 in
      let acq p = Program.map (fun () -> 0) (Sync.Fischer_lock.acquire lock p) in
      let sim = Sim.begin_call sim 0 ~label:"a" (acq 0) in
      let sim = Sim.begin_call sim 1 ~label:"a" (acq 1) in
      let sim = Sim.advance sim 0 in
      let sim = Sim.advance sim 1 in
      let sim = Sim.run_to_idle sim 0 in
      let sim = Sim.run_to_idle sim 1 in
      check_true
        (Printf.sprintf "delay %d: both hold the lock" delay)
        (Sim.is_idle sim 0 && Sim.is_idle sim 1))
    [ 1; 4; 16 ]

let test_fischer_uncontended () =
  let o = run_fischer ~n:1 ~delay:5 ~policy:Schedule.Round_robin in
  check_true "single process acquires" o.Sync.Lock_runner.mutual_exclusion_held;
  check_int "both passages done" 2 o.Sync.Lock_runner.passages

(* --- finite-capacity caches --- *)

let cc_cap capacity = Cc.model ~capacity ~n:4 ()

let account_seq model steps =
  let _, costs =
    List.fold_left
      (fun (m, acc) (pid, inv, wrote) ->
        let m, c = Cost_model.account m pid inv ~wrote in
        (m, c :: acc))
      (model, []) steps
  in
  List.rev costs

let rmrs costs = List.length (List.filter (fun c -> c.Cost_model.rmr) costs)

let test_capacity_eviction () =
  (* Working set of 3 addresses under a 2-line cache: cycling through them
     misses every time; the ideal cache misses only thrice. *)
  let reads = List.concat (List.init 4 (fun _ -> [ 0; 1; 2 ])) in
  let steps = List.map (fun a -> (0, Op.Read a, false)) reads in
  check_int "ideal: one miss per address" 3 (rmrs (account_seq (Cc.model ~n:4 ()) steps));
  check_int "cap 2: every read misses (LRU thrash)" 12
    (rmrs (account_seq (cc_cap 2) steps));
  check_int "cap 3: working set fits" 3 (rmrs (account_seq (cc_cap 3) steps))

let test_capacity_mru_retained () =
  (* Re-touching an address keeps it hot: A B A C A ... A never misses
     twice under capacity 2. *)
  let steps =
    List.map (fun a -> (0, Op.Read a, false)) [ 0; 1; 0; 2; 0; 3; 0 ]
  in
  let costs = account_seq (cc_cap 2) steps in
  let a_misses =
    List.length
      (List.filteri
         (fun i c -> List.nth [ 0; 1; 0; 2; 0; 3; 0 ] i = 0 && c.Cost_model.rmr)
         costs)
  in
  check_int "address 0 misses only once" 1 a_misses

let test_capacity_eviction_drops_ownership () =
  (* Write-back: an evicted dirty line loses exclusivity, so the next
     write misses again. *)
  let m = Cc.model ~protocol:Cc.Write_back ~capacity:1 ~n:4 () in
  let steps =
    [ (0, Op.Write (0, 1), true); (* own line 0 *)
      (0, Op.Write (1, 1), true); (* evicts line 0 *)
      (0, Op.Write (0, 2), true) (* must re-acquire: RMR *) ]
  in
  check_int "all three writes miss" 3 (rmrs (account_seq m steps))

let test_capacity_one_equals_no_reuse () =
  (* Capacity 1 with an alternating working set degenerates to DSM-like
     costs: every access remote. *)
  let steps = List.map (fun a -> (0, Op.Read a, false)) [ 0; 1; 0; 1; 0; 1 ] in
  check_int "no reuse" 6 (rmrs (account_seq (cc_cap 1) steps))

let suite =
  [ case "semi-sync bounds step gaps" test_semi_sync_step_gap_bound;
    case "semi-sync completes scripts" test_semi_sync_completes_scripts;
    case "fischer safe under semi-sync" test_fischer_safe_under_semi_sync;
    case "fischer violable under asynchrony" test_fischer_violable_async;
    case "fischer forced overlap deterministic" test_fischer_forced_overlap_is_deterministic;
    case "fischer uncontended" test_fischer_uncontended;
    case "capacity: LRU thrash" test_capacity_eviction;
    case "capacity: MRU retained" test_capacity_mru_retained;
    case "capacity: eviction drops ownership" test_capacity_eviction_drops_ownership;
    case "capacity 1: no reuse" test_capacity_one_equals_no_reuse ]
