(* Differential suite: the flat struct-of-arrays engine against the
   persistent oracle.

   One shared randomized schedule (begins, advances, crashes, terminations)
   drives a [Sim] machine and a [Flat_sim] machine built over the same
   layout, algorithm instance and cost model; at the end the two must agree
   on everything observable — the full call records (pids, labels, ordinals,
   timestamps, results, per-call RMR and step tallies, in completion
   order), the per-process and total RMR/message counters, the clock, the
   memory contents, the load-link sets, and the Specification 4.1 verdict.
   Every catalog algorithm is exercised under DSM and under all three CC
   protocols (plus directory interconnects and a capacity-bounded cache),
   with crashes enabled. *)

open Smr
open Core

(* splitmix64, the same generator the workload library uses; local copy so
   this suite has no dependency on it. *)
let rng_next st =
  st := Int64.add !st 0x9E3779B97F4A7C15L;
  let z = !st in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rng_int st bound =
  Int64.to_int (Int64.rem (Int64.logand (rng_next st) Int64.max_int) (Int64.of_int bound))

type engines = {
  mutable sim : Sim.t;
  flat : Flat_sim.t;
  flat_calls : History.call list ref; (* reverse completion order *)
}

let collect calls ~pid ~label ~seq ~started ~finished ~crashed ~result ~rmrs
    ~steps =
  calls :=
    { History.c_pid = pid;
      c_label = label;
      c_seq = seq;
      c_started = started;
      c_finished = (if crashed then None else Some finished);
      c_result = (if crashed then None else Some result);
      c_rmrs = rmrs;
      c_steps = steps }
    :: !calls

type model_pair = {
  mp_name : string;
  mp_sim : ?tracer:Obs.Trace.t -> n:int -> Var.layout -> Cost_model.t;
  mp_flat : n:int -> Var.layout -> Flat_sim.model_spec;
}

let model_pairs =
  let cc ?capacity ~protocol ~interconnect ~ways name =
    { mp_name = name;
      mp_sim =
        (fun ?tracer ~n _ ->
          Cc.model ?tracer ~protocol ~interconnect ?capacity ~n ());
      mp_flat =
        (fun ~n:_ layout ->
          Flat_sim.Cc
            { protocol;
              interconnect;
              ways =
                (match ways with
                | Some w -> w
                | None -> max 1 (Var.layout_size layout)) }) }
  in
  [ { mp_name = "dsm";
      mp_sim = (fun ?tracer:_ ~n:_ layout -> Cost_model.dsm layout);
      mp_flat = (fun ~n:_ _ -> Flat_sim.Dsm) };
    cc ~protocol:Cc.Write_through ~interconnect:Cc.Bus ~ways:None "cc-wt/bus";
    cc ~protocol:Cc.Write_back ~interconnect:Cc.Bus ~ways:None "cc-wb/bus";
    cc ~protocol:Cc.Write_update ~interconnect:Cc.Bus ~ways:None "cc-lfcu/bus";
    cc ~protocol:Cc.Write_through ~interconnect:Cc.Directory_precise ~ways:None
      "cc-wt/dir";
    cc ~protocol:Cc.Write_back ~interconnect:(Cc.Directory_limited 1) ~ways:None
      "cc-wb/dir1";
    cc ~protocol:Cc.Write_through ~interconnect:Cc.Bus ~capacity:2
      ~ways:(Some 2) "cc-wt/cap2" ]

(* Drive both machines through one random schedule.  The two stay in
   lock-step by construction, so decisions can be made from the flat
   machine's state. *)
let run_schedule ~steps ~crashes st eng (inst : Signaling.instance)
    (cfg : Signaling.config) =
  let n = cfg.Signaling.n in
  let is_waiter = Array.make n false in
  List.iter (fun p -> is_waiter.(p) <- true) cfg.Signaling.waiters;
  let is_signaler = Array.make n false in
  List.iter (fun p -> is_signaler.(p) <- true) cfg.Signaling.signalers;
  for _ = 1 to steps do
    let p = rng_int st n in
    if Flat_sim.is_running eng.flat p then
      if crashes && rng_int st 100 < 4 then begin
        eng.sim <- Sim.crash eng.sim p;
        Flat_sim.crash eng.flat p
      end
      else begin
        eng.sim <- Sim.advance eng.sim p;
        Flat_sim.advance eng.flat p
      end
    else if Flat_sim.is_idle eng.flat p then
      if crashes && rng_int st 100 < 2 then begin
        eng.sim <- Sim.terminate eng.sim p;
        Flat_sim.terminate eng.flat p
      end
      else begin
        let can_signal = is_signaler.(p) in
        let can_poll = is_waiter.(p) in
        let do_signal =
          can_signal && ((not can_poll) || rng_int st 4 = 0)
        in
        if do_signal then begin
          eng.sim <-
            Sim.begin_call eng.sim p ~label:Signaling.signal_label
              (inst.Signaling.i_signal p);
          Flat_sim.begin_call eng.flat p ~label:Signaling.signal_label
            (inst.Signaling.i_signal p)
        end
        else if can_poll then begin
          eng.sim <-
            Sim.begin_call eng.sim p ~label:Signaling.poll_label
              (inst.Signaling.i_poll p);
          Flat_sim.begin_call eng.flat p ~label:Signaling.poll_label
            (inst.Signaling.i_poll p)
        end
      end
  done;
  (* Crash every in-flight call so both sides expose the same finished call
     set (Sim additionally lists pending calls; Flat_sim reports calls only
     at their end). *)
  for p = 0 to n - 1 do
    if Flat_sim.is_running eng.flat p then begin
      eng.sim <- Sim.crash eng.sim p;
      Flat_sim.crash eng.flat p
    end
  done

let check_agreement ~ctx_name eng =
  let sim = eng.sim and flat = eng.flat in
  let layout = Sim.layout sim in
  let n = Sim.n sim in
  Alcotest.(check int)
    (ctx_name ^ ": clock") (Sim.clock sim) (Flat_sim.clock flat);
  Alcotest.(check int)
    (ctx_name ^ ": total rmrs") (Sim.total_rmrs sim) (Flat_sim.total_rmrs flat);
  Alcotest.(check int)
    (ctx_name ^ ": total messages") (Sim.total_messages sim)
    (Flat_sim.total_messages flat);
  for p = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "%s: rmrs p%d" ctx_name p)
      (Sim.rmrs sim p) (Flat_sim.rmrs flat p);
    Alcotest.(check int)
      (Printf.sprintf "%s: steps p%d" ctx_name p)
      (Sim.step_count sim p)
      (Flat_sim.step_count flat p);
    Alcotest.(check int)
      (Printf.sprintf "%s: calls p%d" ctx_name p)
      (Sim.call_count sim p)
      (Flat_sim.call_count flat p);
    Alcotest.(check int)
      (Printf.sprintf "%s: completed p%d" ctx_name p)
      (Sim.completed_count sim p)
      (Flat_sim.completed_count flat p);
    Alcotest.(check (option int))
      (Printf.sprintf "%s: last result p%d" ctx_name p)
      (Sim.last_result sim p)
      (Flat_sim.last_result flat p)
  done;
  let mem = Sim.memory sim in
  List.iter
    (fun a ->
      Alcotest.(check int)
        (Printf.sprintf "%s: memory %s" ctx_name (Var.layout_name layout a))
        (Memory.get mem a) (Flat_sim.value flat a);
      for p = 0 to n - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "%s: ll p%d %s" ctx_name p (Var.layout_name layout a))
          (Memory.ll_valid mem ~pid:p a)
          (Flat_sim.ll_valid flat p a)
      done)
    (Var.layout_addrs layout);
  (* Full call records, in completion order.  Sim.calls lists completed and
     crashed calls first (the schedule left nothing in flight). *)
  let sim_calls = Sim.calls sim in
  let flat_calls = List.rev !(eng.flat_calls) in
  Alcotest.(check int)
    (ctx_name ^ ": call record count")
    (List.length sim_calls) (List.length flat_calls);
  List.iter2
    (fun (c1 : History.call) (c2 : History.call) ->
      let open History in
      Alcotest.(check bool)
        (Printf.sprintf "%s: call record %s#%d of p%d" ctx_name c1.c_label
           c1.c_seq c1.c_pid)
        true
        (c1.c_pid = c2.c_pid && c1.c_label = c2.c_label && c1.c_seq = c2.c_seq
        && c1.c_started = c2.c_started
        && c1.c_finished = c2.c_finished
        && c1.c_result = c2.c_result && c1.c_rmrs = c2.c_rmrs
        && c1.c_steps = c2.c_steps))
    sim_calls flat_calls;
  (* Same records, so necessarily the same verdict — check it anyway, as the
     property downstream consumers actually read. *)
  Alcotest.(check bool)
    (ctx_name ^ ": spec 4.1 verdict")
    (Signaling.polling_ok sim)
    (Signaling.check_polling flat_calls = [])

let run_one (module A : Signaling.POLLING) mp ~n ~seed ~crashes =
  let cfg = Algorithms.config_for (module A) ~n in
  let ctx = Var.Ctx.create () in
  let inst = Signaling.instantiate (module A) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(mp.mp_sim ~n layout) ~layout ~n in
  let flat_calls = ref [] in
  let flat =
    Flat_sim.create
      ~on_complete:(collect flat_calls)
      ~model:(mp.mp_flat ~n layout) ~layout ~n ()
  in
  let eng = { sim; flat; flat_calls } in
  let st = ref (Int64.of_int (0x5EED + (seed * 7919))) in
  run_schedule ~steps:300 ~crashes st eng inst cfg;
  check_agreement
    ~ctx_name:(Printf.sprintf "%s/%s/seed%d" A.name mp.mp_name seed)
    eng

let test_all_algorithms_all_models () =
  List.iter
    (fun (module A : Signaling.POLLING) ->
      List.iter
        (fun mp ->
          List.iter
            (fun seed -> run_one (module A) mp ~n:4 ~seed ~crashes:true)
            [ 0; 1; 2 ])
        model_pairs)
    Algorithms.polling_algorithms

let test_no_crash_runs () =
  (* Crash-free schedules finish calls normally, exercising the
     completion-path timestamps rather than the crash path. *)
  List.iter
    (fun (module A : Signaling.POLLING) ->
      List.iter
        (fun mp -> run_one (module A) mp ~n:5 ~seed:7 ~crashes:false)
        model_pairs)
    Algorithms.polling_algorithms

let test_run_call_matches () =
  (* The sequential helper: a solo signal-then-poll conversation gives the
     same results and tallies under both engines, for every model. *)
  List.iter
    (fun mp ->
      let n = 3 in
      let cfg = Algorithms.config_for (module Cc_flag) ~n in
      let ctx = Var.Ctx.create () in
      let inst = Signaling.instantiate (module Cc_flag) ctx cfg in
      let layout = Var.Ctx.freeze ctx in
      let sim = Sim.create ~model:(mp.mp_sim ~n layout) ~layout ~n in
      let flat =
        Flat_sim.create ~model:(mp.mp_flat ~n layout) ~layout ~n ()
      in
      let sim, r0 =
        Sim.run_call sim 1 ~label:Signaling.poll_label (inst.Signaling.i_poll 1)
      in
      let f0 =
        Flat_sim.run_call flat 1 ~label:Signaling.poll_label
          (inst.Signaling.i_poll 1)
      in
      let sim, _ =
        Sim.run_call sim 0 ~label:Signaling.signal_label
          (inst.Signaling.i_signal 0)
      in
      let (_ : Op.value) =
        Flat_sim.run_call flat 0 ~label:Signaling.signal_label
          (inst.Signaling.i_signal 0)
      in
      let sim, r1 =
        Sim.run_call sim 1 ~label:Signaling.poll_label (inst.Signaling.i_poll 1)
      in
      let f1 =
        Flat_sim.run_call flat 1 ~label:Signaling.poll_label
          (inst.Signaling.i_poll 1)
      in
      Alcotest.(check (pair int int))
        (mp.mp_name ^ ": poll results")
        (r0, r1) (f0, f1);
      Alcotest.(check int)
        (mp.mp_name ^ ": total rmrs")
        (Sim.total_rmrs sim) (Flat_sim.total_rmrs flat))
    model_pairs

(* Counter-plane soundness: over one shared schedule, the flat engine's
   {!Obs.Counters} totals must equal what the persistent simulator's
   tracer folds into its metrics registry — RMRs, executed steps, crashes
   and (for CC models) coherence messages.  Totals, not per-label rows:
   the planes are marginal by design, and under DSM the tracer bills
   message hops through [messages_total] while the event stream carries
   no cache events, so the coherence totals are both zero there. *)
let run_counters_one (module A : Signaling.POLLING) mp ~n ~seed ~crashes =
  let cfg = Algorithms.config_for (module A) ~n in
  let ctx = Var.Ctx.create () in
  let inst = Signaling.instantiate (module A) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let tr = Obs.Trace.create () in
  let sim =
    Sim.with_tracer
      (Sim.create ~model:(mp.mp_sim ~tracer:tr ~n layout) ~layout ~n)
      (Some tr)
  in
  let counters =
    Obs.Counters.create ~n ~size:(Var.layout_size layout) ()
  in
  let flat_calls = ref [] in
  let flat =
    Flat_sim.create ~counters
      ~on_complete:(collect flat_calls)
      ~model:(mp.mp_flat ~n layout) ~layout ~n ()
  in
  let eng = { sim; flat; flat_calls } in
  let st = ref (Int64.of_int (0xC0DE + (seed * 7919))) in
  run_schedule ~steps:300 ~crashes st eng inst cfg;
  let traced name = int_of_float (Obs.Metrics.total (Obs.Trace.metrics tr) name) in
  let ctx_name = Printf.sprintf "%s/%s/seed%d" A.name mp.mp_name seed in
  Alcotest.(check int)
    (ctx_name ^ ": counters rmr vs traced rmr_total")
    (traced "rmr_total")
    (Obs.Counters.total counters Obs.Counters.Rmr);
  Alcotest.(check int)
    (ctx_name ^ ": counters steps vs traced steps_total")
    (traced "steps_total")
    (Obs.Counters.total counters Obs.Counters.Rmr
    + Obs.Counters.total counters Obs.Counters.Local);
  Alcotest.(check int)
    (ctx_name ^ ": counters crashes vs traced crashes_total")
    (traced "crashes_total")
    (Obs.Counters.total counters Obs.Counters.Crash);
  Alcotest.(check int)
    (ctx_name ^ ": counters messages vs traced coherence_messages_total")
    (traced "coherence_messages_total")
    (Obs.Counters.total_messages counters);
  (* The plane view and the engine's own tallies agree as well. *)
  Alcotest.(check int)
    (ctx_name ^ ": counters rmr vs engine total_rmrs")
    (Flat_sim.total_rmrs flat)
    (Obs.Counters.total counters Obs.Counters.Rmr);
  let per_cell_rmrs =
    List.fold_left
      (fun acc a ->
        acc + Obs.Counters.cell_total counters ~addr:a Obs.Counters.Rmr)
      0 (Var.layout_addrs layout)
  in
  Alcotest.(check int)
    (ctx_name ^ ": cell plane sums to the pid plane")
    (Obs.Counters.total counters Obs.Counters.Rmr)
    per_cell_rmrs

let test_counters_match_trace () =
  List.iter
    (fun (module A : Signaling.POLLING) ->
      List.iter
        (fun mp ->
          run_counters_one (module A) mp ~n:4 ~seed:11 ~crashes:true;
          run_counters_one (module A) mp ~n:5 ~seed:13 ~crashes:false)
        model_pairs)
    Algorithms.polling_algorithms

let suite =
  [ Alcotest.test_case "all algorithms x models x seeds, with crashes" `Quick
      test_all_algorithms_all_models;
    Alcotest.test_case "crash-free schedules" `Quick test_no_crash_runs;
    Alcotest.test_case "run_call parity" `Quick test_run_call_matches;
    Alcotest.test_case "counter planes match the traced metrics" `Quick
      test_counters_match_trace ]
