(* Tests for the simulator: call lifecycle, peeking, accounting, and — most
   importantly — replay-based erasure (Lemma 6.7). *)

open Smr
open Program.Syntax
open Test_util

let alloc_pair ctx =
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let y = Var.Ctx.int ctx ~name:"y" ~home:(Var.Module 1) 3 in
  (x, y)

let test_call_lifecycle () =
  let sim, _, (x, _) = solo_machine alloc_pair in
  check_true "initially idle" (Sim.is_idle sim 0);
  let prog =
    let* v = Program.read x in
    Program.return (v + 100)
  in
  let sim = Sim.begin_call sim 0 ~label:"f" prog in
  check_true "running" (Sim.is_running sim 0);
  check_true "peek shows the read"
    (Sim.peek sim 0 = Some (Op.Read (Var.addr x)));
  let sim = Sim.advance sim 0 in
  check_true "idle after final step" (Sim.is_idle sim 0);
  check_true "result recorded" (Sim.last_result sim 0 = Some 100);
  let calls = Sim.calls_of sim 0 in
  check_int "one call" 1 (List.length calls);
  let c = List.hd calls in
  check_true "label" (c.History.c_label = "f");
  check_int "one step" 1 c.History.c_steps

let test_immediate_return () =
  let sim, _, _ = solo_machine alloc_pair in
  let sim, v = Sim.run_call sim 0 ~label:"nop" (Program.return 7) in
  check_int "value" 7 v;
  check_int "no steps" 0 (List.length (Sim.steps sim));
  check_int "but a call" 1 (List.length (Sim.calls sim))

let test_begin_while_running_rejected () =
  let sim, _, (x, _) = solo_machine alloc_pair in
  let sim = Sim.begin_call sim 0 ~label:"f" (Program.step (Op.Read (Var.addr x))) in
  Alcotest.check_raises "double begin"
    (Invalid_argument "Sim.begin_call: process already in a call") (fun () ->
      ignore (Sim.begin_call sim 0 ~label:"g" (Program.return 0)))

let test_terminate_rules () =
  let sim, _, (x, _) = solo_machine alloc_pair in
  let sim' = Sim.begin_call sim 0 ~label:"f" (Program.step (Op.Read (Var.addr x))) in
  Alcotest.check_raises "terminate mid-call"
    (Invalid_argument "Sim.terminate: process mid-call") (fun () ->
      ignore (Sim.terminate sim' 0));
  let sim = Sim.terminate sim 0 in
  check_true "terminated" (Sim.is_terminated sim 0);
  Alcotest.check_raises "begin after terminate"
    (Invalid_argument "Sim.begin_call: process terminated") (fun () ->
      ignore (Sim.begin_call sim 0 ~label:"f" (Program.return 0)))

let test_clock_orders_calls_and_steps () =
  let sim, _, (x, _) = solo_machine alloc_pair in
  let sim, _ = Sim.run_call sim 0 ~label:"a" (Program.step (Op.Read (Var.addr x))) in
  let sim, _ = Sim.run_call sim 1 ~label:"b" (Program.step (Op.Read (Var.addr x))) in
  match Sim.calls sim with
  | [ a; b ] ->
    check_true "a before b"
      (Option.get a.History.c_finished < b.History.c_started)
  | _ -> Alcotest.fail "expected two calls"

let test_rmr_accounting_incremental () =
  let sim, _, (x, y) = solo_machine alloc_pair in
  let prog =
    let* _ = Program.read x (* shared: RMR *) in
    let* _ = Program.read y (* p1's module, run by p0: RMR *) in
    Program.write y 9 (* RMR *)
  in
  let sim = run_unit sim prog in
  check_int "three RMRs for p0" 3 (Sim.rmrs sim 0);
  check_int "total matches" 3 (Sim.total_rmrs sim);
  check_int "step count" 3 (Sim.step_count sim 0);
  (* Incremental counters agree with recomputation from steps. *)
  let t = History.tally_by_pid (Sim.steps sim) in
  check_int "tally agrees" (History.Pid_map.find 0 t).History.t_rmrs
    (Sim.rmrs sim 0)

let test_next_is_rmr () =
  let sim, _, (_, y) = solo_machine alloc_pair in
  let sim = Sim.begin_call sim 0 ~label:"f" (Program.step (Op.Read (Var.addr y))) in
  check_true "remote read predicted" (Sim.next_is_rmr sim 0 = Some true);
  let sim1 = Sim.begin_call sim 1 ~label:"f" (Program.step (Op.Read (Var.addr y))) in
  check_true "local read predicted" (Sim.next_is_rmr sim1 1 = Some false)

let test_run_to_idle_fuel () =
  let sim, _, (x, _) = solo_machine alloc_pair in
  let spin = Program.map (fun () -> 0) (Program.await x (fun v -> v > 0)) in
  let sim = Sim.begin_call sim 0 ~label:"spin" spin in
  Alcotest.check_raises "fuel exhausted" (Failure "Sim.run_to_idle: out of fuel")
    (fun () -> ignore (Sim.run_to_idle ~fuel:50 sim 0))

(* --- erasure --- *)

let test_erase_invisible () =
  (* p1 writes its own variable; p0 reads an unrelated one.  Erasing p1
     leaves p0's history intact. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let w = Var.Ctx.int ctx ~name:"w" ~home:(Var.Module 1) 0 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:2 in
  let sim, _ = Sim.run_call sim 0 ~label:"r" (Program.step (Op.Read (Var.addr x))) in
  let sim, _ = Sim.run_call sim 1 ~label:"w" (Program.step (Op.Write (Var.addr w, 5))) in
  check_true "both participate"
    (Sim.Pid_set.cardinal (Sim.participants sim) = 2);
  let erased = Sim.erase sim [ 1 ] in
  check_true "only p0 remains"
    (Sim.Pid_set.elements (Sim.participants erased) = [ 0 ]);
  check_int "p0's steps survive" 1 (List.length (Sim.steps erased));
  check_int "p1's write is gone" 0 (Memory.get (Sim.memory erased) (Var.addr w))

let test_erase_visible_diverges () =
  (* p0 reads a value p1 wrote; erasing p1 changes p0's response. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:2 in
  let sim, _ = Sim.run_call sim 1 ~label:"w" (Program.step (Op.Write (Var.addr x, 5))) in
  let sim, v = Sim.run_call sim 0 ~label:"r" (Program.step (Op.Read (Var.addr x))) in
  check_int "p0 saw the write" 5 v;
  check_false "p1 is not erasable" (Sim.can_erase sim [ 1 ]);
  check_true "erase raises"
    (match Sim.erase sim [ 1 ] with
    | (_ : Sim.t) -> false
    | exception Sim.Replay_divergence { pid = 0; _ } -> true
    | exception Sim.Replay_divergence _ -> false)

let test_erase_fai_chain_diverges () =
  (* Two FAIs: the second's response depends on the first — the mechanism
     that defeats the adversary against the queue algorithm. *)
  let ctx = Var.Ctx.create () in
  let c = Var.Ctx.int ctx ~name:"c" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:2 in
  let fai p sim =
    fst (Sim.run_call sim p ~label:"fai" (Program.step (Op.Faa (Var.addr c, 1))))
  in
  let sim = fai 0 sim in
  let sim = fai 1 sim in
  check_false "first FAIer visible to second" (Sim.can_erase sim [ 0 ]);
  check_true "last FAIer invisible" (Sim.can_erase sim [ 1 ])

let test_erase_blind_write_chain_ok () =
  (* Two blind writes to the same variable: the earlier writer is
     overwritten and invisible... but erasing the LAST writer changes the
     final memory, which no one has read, so it is still erasable. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:2 in
  let w p v sim =
    fst (Sim.run_call sim p ~label:"w" (Program.step (Op.Write (Var.addr x, v))))
  in
  let sim = w 0 1 sim in
  let sim = w 1 2 sim in
  check_true "overwritten writer erasable" (Sim.can_erase sim [ 0 ]);
  check_true "unread last writer erasable" (Sim.can_erase sim [ 1 ])

let test_erase_mid_call_preserves_state () =
  (* Erase a bystander while p0 is mid-call; p0's continuation must be
     reconstructed exactly. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let w = Var.Ctx.int ctx ~name:"w" ~home:(Var.Module 1) 0 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:2 in
  let prog =
    let* a = Program.read x in
    let* b = Program.read x in
    Program.return (a + b)
  in
  let sim = Sim.begin_call sim 0 ~label:"f" (Program.map Fun.id prog) in
  let sim = Sim.advance sim 0 in
  let sim, _ = Sim.run_call sim 1 ~label:"w" (Program.step (Op.Write (Var.addr w, 5))) in
  let erased = Sim.erase sim [ 1 ] in
  check_true "p0 still mid-call" (Sim.is_running erased 0);
  let finished = Sim.run_to_idle erased 0 in
  check_true "call completes with original semantics"
    (Sim.last_result finished 0 = Some 0)

let prop_erasure_preserves_survivor_rmrs =
  (* Run k processes on disjoint variables under a random interleaving;
     erasing any subset never changes the others' RMR counts. *)
  qcheck ~count:60 "erasing invisible processes preserves survivors' accounting"
    QCheck.(pair (int_range 2 5) (int_bound 1000))
    (fun (k, seed) ->
      let ctx = Var.Ctx.create () in
      let vars =
        Array.init k (fun i ->
            Var.Ctx.int ctx ~name:(Printf.sprintf "v%d" i) ~home:(Var.Module i) 0)
      in
      let layout = Var.Ctx.freeze ctx in
      let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:k in
      let prog i =
        let* () = Program.write vars.(i) 1 in
        let* v = Program.read vars.(i) in
        Program.return v
      in
      let behavior sim p : Schedule.action =
        if Sim.last_result sim p <> None then Stop
        else Start ("f", prog p)
      in
      let sim =
        Schedule.run ~policy:(Schedule.Random_seed seed) ~behavior
          ~pids:(List.init k Fun.id) sim
      in
      let victim = seed mod k in
      let erased = Sim.erase sim [ victim ] in
      List.for_all
        (fun p -> p = victim || Sim.rmrs erased p = Sim.rmrs sim p)
        (List.init k Fun.id))

(* --- lean mode (the explorer's history-free stepping) --- *)

let test_lean_counters_match_full () =
  (* The same run, lean and full: every counter and call record agrees;
     only the per-step accumulators differ (empty when lean). *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let a = Var.addr x in
  let drive sim0 =
    let sim, _ =
      Sim.run_call sim0 0 ~label:"a" (Program.step (Op.Write (a, 5)))
    in
    fst (Sim.run_call sim 1 ~label:"b" (Program.step (Op.Read a)))
  in
  let fresh () = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:2 in
  let full = drive (fresh ()) in
  let lean = drive (Sim.lean_mode (fresh ())) in
  check_true "lean flagged" (Sim.is_lean lean);
  check_false "full not flagged" (Sim.is_lean full);
  check_int "total rmrs agree" (Sim.total_rmrs full) (Sim.total_rmrs lean);
  check_int "per-pid rmrs agree" (Sim.rmrs full 1) (Sim.rmrs lean 1);
  check_int "step counts agree" (Sim.step_count full 0) (Sim.step_count lean 0);
  check_true "call records agree" (Sim.calls full = Sim.calls lean);
  check_true "last results agree"
    (Sim.last_result full 1 = Sim.last_result lean 1);
  check_true "full machine keeps steps" (Sim.steps full <> []);
  check_true "lean machine keeps none" (Sim.steps lean = [])

let test_lean_replay_rejected () =
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.lean_mode (Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:1) in
  let sim, _ =
    Sim.run_call sim 0 ~label:"a" (Program.step (Op.Read (Var.addr x)))
  in
  Alcotest.check_raises "replay needs a trace"
    (Invalid_argument "Sim.replay: a lean machine keeps no replayable trace")
    (fun () -> ignore (Sim.replay ~keep:(fun _ -> true) sim))

let test_lean_mode_rejects_history () =
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:1 in
  let sim, _ =
    Sim.run_call sim 0 ~label:"a" (Program.step (Op.Read (Var.addr x)))
  in
  Alcotest.check_raises "lean_mode only on a fresh machine"
    (Invalid_argument "Sim.lean_mode: machine already has recorded history")
    (fun () -> ignore (Sim.lean_mode sim))

let suite =
  [ case "call lifecycle" test_call_lifecycle;
    case "immediate return" test_immediate_return;
    case "begin while running rejected" test_begin_while_running_rejected;
    case "terminate rules" test_terminate_rules;
    case "event clock orders calls" test_clock_orders_calls_and_steps;
    case "rmr accounting incremental" test_rmr_accounting_incremental;
    case "next_is_rmr prediction" test_next_is_rmr;
    case "run_to_idle fuel" test_run_to_idle_fuel;
    case "erase invisible process" test_erase_invisible;
    case "erase visible process diverges" test_erase_visible_diverges;
    case "FAI chains defeat erasure" test_erase_fai_chain_diverges;
    case "blind write chains allow erasure" test_erase_blind_write_chain_ok;
    case "erasure preserves mid-call state" test_erase_mid_call_preserves_state;
    case "lean run matches full run's accounting" test_lean_counters_match_full;
    case "lean machine refuses replay" test_lean_replay_rejected;
    case "lean_mode refuses recorded history" test_lean_mode_rejects_history;
    prop_erasure_preserves_survivor_rmrs ]
