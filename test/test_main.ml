(* Test runner: one alcotest binary aggregating every suite. *)

let () =
  Alcotest.run "separation"
    [ ("op", Test_op.suite);
      ("var", Test_var.suite);
      ("program", Test_program.suite);
      ("memory", Test_memory.suite);
      ("cost-models", Test_cost_models.suite);
      ("history", Test_history.suite);
      ("sim", Test_sim.suite);
      ("schedule", Test_schedule.suite);
      ("random-programs", Test_random_programs.suite);
      ("locks", Test_locks.suite);
      ("sync-objects", Test_sync_objects.suite);
      ("signaling-spec", Test_signaling_spec.suite);
      ("algorithms", Test_algorithms.suite);
      ("adversary", Test_adversary.suite);
      ("gme", Test_gme.suite);
      ("timing", Test_timing.suite);
      ("explore", Test_explore.suite);
      ("crash", Test_crash.suite);
      ("ablation", Test_ablation.suite);
      ("report", Test_report.suite);
      ("lint", Test_lint.suite);
      ("experiments", Test_experiments.suite);
      ("flat", Test_flat.suite);
      ("workload", Test_workload.suite);
      ("timeline", Test_timeline.suite);
      ("trace", Test_trace.suite);
      ("profile", Test_profile.suite);
      ("fuzz", Test_fuzz.suite) ]
