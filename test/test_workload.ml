(* The open-system workload layer: seeded RNG, arrival processes, streaming
   stats, and the driver's determinism and accounting invariants.

   The load pipeline's contract is that everything observable is a function
   of the scenario (seed included): CI diffs `separation load` stdout
   across runs and --jobs levels, and these tests pin the same property at
   the library level — identical reports, identical rendered tables — plus
   the steady-state allocation bound the flat engine is judged by. *)

open Workload

let check_true = Alcotest.(check bool) "expected true" true
let check_int = Alcotest.(check int)
let case name f = Alcotest.test_case name `Quick f

(* --- rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 1000 do
    check_true (Rng.next a = Rng.next b)
  done;
  let c = Rng.create 43 in
  check_true (Rng.next (Rng.create 42) <> Rng.next c)

let test_rng_ranges () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let i = Rng.int r 13 in
    check_true (i >= 0 && i < 13);
    let f = Rng.float r in
    check_true (f >= 0.0 && f < 1.0);
    check_true (Rng.exponential r ~mean:2.0 >= 0.0)
  done

(* --- stats --- *)

let test_stats_welford () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  let m = Stats.summary s in
  check_int "count" 8 m.Stats.count;
  check_true (abs_float (m.Stats.mean -. 5.0) < 1e-9);
  (* population stddev of the classic example is exactly 2 *)
  check_true (abs_float (m.Stats.stddev -. 2.0) < 1e-9);
  check_true (m.Stats.min = 2.0 && m.Stats.max = 9.0);
  let empty = Stats.summary (Stats.create ()) in
  check_int "empty count" 0 empty.Stats.count;
  check_true (empty.Stats.mean = 0.0 && empty.Stats.stddev = 0.0)

(* --- arrivals --- *)

let test_arrivals_gaps () =
  let rng = Rng.create 3 in
  let u = Arrivals.make (Arrivals.Uniform 5) in
  for _ = 1 to 100 do
    check_int "uniform gap" 5 (Arrivals.next_gap u rng)
  done;
  let p = Arrivals.make (Arrivals.Poisson 2.0) in
  let total = ref 0 in
  for _ = 1 to 1000 do
    let g = Arrivals.next_gap p rng in
    check_true (g >= 0);
    total := !total + g
  done;
  (* mean 2.0: a thousand draws land well inside [1, 4] on any seed *)
  check_true (!total > 1000 && !total < 4000);
  let b = Arrivals.make (Arrivals.Bursty { burst = 4; mean_lull = 10.0 }) in
  (* within a burst the gap is 0; the burst-closing gap is >= 1 *)
  let gaps = List.init 12 (fun _ -> Arrivals.next_gap b rng) in
  check_true (List.exists (fun g -> g = 0) gaps);
  check_true (List.exists (fun g -> g >= 1) gaps)

(* --- the driver over the catalog (via Core.Loadgen) --- *)

let scenario ?(algorithm = "cc-flag") ?(model = `Cc_wt) ?(k = 400) ?(seed = 11)
    ?(crash_prob = 0.0) ?(leave_early_prob = 0.0) () =
  let m = Option.get (Core.Experiment.find_algorithm algorithm) in
  Core.Loadgen.scenario ~ways:2 ~algorithm:m ~model
    { Driver.default_spec with
      seed;
      waiters = k;
      polls_per_waiter = 3;
      signals = 8;
      signal_every = max 1 (4 * k / 8);
      crash_prob;
      leave_early_prob }

let test_driver_deterministic () =
  (* Same scenario, two runs: the reports (floats included) and the
     rendered table bytes must be identical — the library-level half of
     CI's `separation load` same-seed / jobs-invariance diffs. *)
  List.iter
    (fun (algorithm, model) ->
      let sc = scenario ~algorithm ~model ~crash_prob:0.05 ~leave_early_prob:0.1 () in
      let r1 = Core.Loadgen.run sc and r2 = Core.Loadgen.run sc in
      check_true (r1 = r2);
      let t1 = Core.Loadgen.table [ (sc, r1) ]
      and t2 = Core.Loadgen.table [ (sc, r2) ] in
      Alcotest.(check string)
        "table bytes"
        (Core.Results.to_json t1)
        (Core.Results.to_json t2))
    [ ("cc-flag", `Cc_wt); ("dsm-broadcast", `Dsm) ]

let test_driver_seed_sensitivity () =
  let r1 = Core.Loadgen.run (scenario ~seed:1 ~crash_prob:0.1 ())
  and r2 = Core.Loadgen.run (scenario ~seed:2 ~crash_prob:0.1 ()) in
  check_true (r1 <> r2)

let test_driver_accounting_invariants () =
  let k = 500 in
  let sc =
    scenario ~algorithm:"dsm-broadcast" ~model:`Dsm ~k ~crash_prob:0.08
      ~leave_early_prob:0.15 ()
  in
  let r = Core.Loadgen.run sc in
  let open Driver in
  check_int "every waiter joins" k r.r_waiters;
  (* every joined waiter either terminates cleanly or crashed mid-poll *)
  check_int "departures" k (r.r_left + r.r_crashes);
  check_true (r.r_left_early <= r.r_left);
  check_true (r.r_crashes > 0 && r.r_left_early > 0);
  check_true (r.r_polls <= k * 3);
  check_int "polls observed = polls summarized" r.r_polls
    r.r_poll_rmrs.Stats.count;
  check_int "signals all issued" 8 r.r_signals;
  check_true r.r_spec_ok;
  check_true (not r.r_fuel_exhausted);
  check_true (r.r_total_rmrs >= r.r_signaler_rmrs)

let test_driver_spec_verdict_detects_violations () =
  (* The streaming Spec 4.1 check must be able to fail: dsm-queue WITHOUT
     the registration-time memo answers false after a completed Signal()
     when a waiter registers between two signals.  Reproduce that shape
     with a degenerate "algorithm" whose poll always returns false. *)
  let open Smr in
  let ctx = Var.Ctx.create () in
  let cell = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let inst =
    { Driver.w_name = "always-false";
      w_poll = (fun _ -> Program.map (fun _ -> 0) (Program.read cell));
      w_signal = (fun _ -> Program.map (fun () -> 0) (Program.write cell 1)) }
  in
  let spec =
    { Driver.default_spec with
      seed = 5;
      waiters = 20;
      signals = 2;
      signal_every = 4;
      arrivals = Arrivals.Uniform 8 }
  in
  let r = Driver.run ~model:Smr.Flat_sim.Dsm ~layout ~n:21 inst spec in
  check_true (not r.Driver.r_spec_ok)

let test_driver_allocation_bounded () =
  (* Steady state allocates a bounded constant per step (the free-monad
     interpretation's closures), independent of k: the engine itself —
     cells, caches, accounting — is flat arrays and allocates nothing. *)
  let words_per_step k =
    let sc = scenario ~algorithm:"dsm-broadcast" ~model:`Dsm ~k () in
    ignore (Core.Loadgen.run sc) (* warm-up excluded from the window *);
    let w0 = Gc.minor_words () in
    let r = Core.Loadgen.run sc in
    (Gc.minor_words () -. w0) /. float_of_int r.Driver.r_steps
  in
  let small = words_per_step 500 and large = words_per_step 4000 in
  check_true (small < 256.0);
  check_true (large < 256.0);
  (* constant, not growing with k: allow generous jitter for GC noise *)
  check_true (large < small *. 2.0 +. 16.0)

let test_timeline_sampled () =
  (* Rendering a history bigger than the caps degrades to a sample with an
     explicit marker, and the default caps leave small runs untouched. *)
  let open Smr in
  let n = 80 in
  let ctx = Var.Ctx.create () in
  let cell = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let sim = ref (Sim.create ~model:(Cost_model.dsm layout) ~layout ~n) in
  for p = 0 to n - 1 do
    for _ = 1 to 10 do
      let s, _ =
        Sim.run_call !sim p ~label:"w"
          (Program.map (fun () -> 0) (Program.write cell p))
      in
      sim := s
    done
  done;
  let r = Timeline.render !sim in
  let contains s sub =
    let sl = String.length s and bl = String.length sub in
    let rec go i = i + bl <= sl && (String.sub s i bl = sub || go (i + 1)) in
    go 0
  in
  check_true (contains r "[sampled: 64 of 80 process columns shown]");
  (* ticks are counted among the visible columns only: 64 shown processes
     x 10 calls x 3 event ticks (begin, step, return) *)
  check_true (contains r "of 1920 event ticks shown]");
  (* rows: header + 512 event rows + 2 trailers *)
  check_int "row cap respected" (1 + 512 + 2)
    (List.length (String.split_on_char '\n' (String.trim r)));
  (* an uncapped render of the same history has no marker *)
  let full = Timeline.render ~max_cols:100 ~max_rows:10_000 !sim in
  check_true (not (contains full "[sampled:"))

let suite =
  [ case "rng: seeded and deterministic" test_rng_deterministic;
    case "rng: ranges" test_rng_ranges;
    case "stats: welford moments" test_stats_welford;
    case "arrivals: gap laws" test_arrivals_gaps;
    case "driver: same seed, same bytes" test_driver_deterministic;
    case "driver: different seed, different run" test_driver_seed_sensitivity;
    case "driver: accounting invariants under churn"
      test_driver_accounting_invariants;
    case "driver: streaming verdict can fail"
      test_driver_spec_verdict_detects_violations;
    case "driver: steady-state allocation bounded"
      test_driver_allocation_bounded;
    case "timeline: huge histories render sampled" test_timeline_sampled ]
