(* Tests for variable allocation and layouts. *)

open Smr
open Test_util

let test_distinct_addresses () =
  let ctx = Var.Ctx.create () in
  let a = Var.Ctx.int ctx ~name:"a" ~home:Var.Shared 0 in
  let b = Var.Ctx.bool ctx ~name:"b" ~home:Var.Shared false in
  let arr = Var.Ctx.int_array ctx ~name:"c" ~home:(fun i -> Var.Module i) 3 (fun i -> i) in
  let addrs = Var.addr a :: Var.addr b :: Array.to_list (Array.map Var.addr arr) in
  check_int "all distinct" (List.length addrs)
    (List.length (List.sort_uniq compare addrs))

let test_layout_contents () =
  let ctx = Var.Ctx.create () in
  let a = Var.Ctx.int ctx ~name:"counter" ~home:(Var.Module 2) 7 in
  let layout = Var.Ctx.freeze ctx in
  check_true "home recorded" (Var.layout_home layout (Var.addr a) = Var.Module 2);
  check_int "init recorded" 7 (Var.layout_init layout (Var.addr a));
  check_true "name recorded" (Var.layout_name layout (Var.addr a) = "counter");
  check_int "size" 1 (Var.layout_size layout);
  check_true "addrs listed" (Var.layout_addrs layout = [ Var.addr a ])

let test_layout_defaults_for_unknown_addr () =
  let layout = Var.Ctx.freeze (Var.Ctx.create ()) in
  check_true "unknown home is shared" (Var.layout_home layout 99 = Var.Shared);
  check_int "unknown init is zero" 0 (Var.layout_init layout 99)

let test_freeze_isolation () =
  (* Allocations after freezing do not appear in the earlier layout. *)
  let ctx = Var.Ctx.create () in
  let _a = Var.Ctx.int ctx ~name:"a" ~home:Var.Shared 0 in
  let layout = Var.Ctx.freeze ctx in
  let b = Var.Ctx.int ctx ~name:"b" ~home:(Var.Module 1) 9 in
  check_int "frozen size unchanged" 1 (Var.layout_size layout);
  check_true "late var invisible (defaults)"
    (Var.layout_home layout (Var.addr b) = Var.Shared);
  let layout2 = Var.Ctx.freeze ctx in
  check_int "refreezing sees both" 2 (Var.layout_size layout2)

let test_array_initializers () =
  let ctx = Var.Ctx.create () in
  let arr =
    Var.Ctx.bool_array ctx ~name:"flags" ~home:(fun i -> Var.Module i) 4 (fun i -> i = 0)
  in
  let layout = Var.Ctx.freeze ctx in
  check_int "first true" 1 (Var.layout_init layout (Var.addr arr.(0)));
  check_int "others false" 0 (Var.layout_init layout (Var.addr arr.(3)));
  check_true "per-index homes" (Var.home arr.(2) = Var.Module 2);
  check_true "indexed names" (Var.name arr.(2) = "flags[2]")

let test_pid_opt_encoding () =
  let ctx = Var.Ctx.create () in
  let w = Var.Ctx.pid_opt ctx ~name:"w" ~home:Var.Shared None in
  check_int "NIL encodes negative" (-1) (Var.encode w None);
  check_int "pid encodes as itself" 5 (Var.encode w (Some 5));
  check_true "decode round trip" (Var.decode w (Var.encode w (Some 3)) = Some 3);
  check_true "decode NIL" (Var.decode w (-1) = None)

let test_custom_encoding () =
  let ctx = Var.Ctx.create () in
  let v =
    Var.Ctx.alloc ctx ~name:"tri" ~home:Var.Shared
      ~encode:(function `A -> 0 | `B -> 1 | `C -> 2)
      ~decode:(function 0 -> `A | 1 -> `B | _ -> `C)
      `B
  in
  let layout = Var.Ctx.freeze ctx in
  check_int "typed init encoded" 1 (Var.layout_init layout (Var.addr v));
  check_true "round trip" (Var.decode v (Var.encode v `C) = `C)

let suite =
  [ case "distinct addresses" test_distinct_addresses;
    case "layout contents" test_layout_contents;
    case "layout defaults" test_layout_defaults_for_unknown_addr;
    case "freeze isolation" test_freeze_isolation;
    case "array initializers" test_array_initializers;
    case "pid option encoding" test_pid_opt_encoding;
    case "custom encoding" test_custom_encoding ]
