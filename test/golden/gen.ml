(* Regenerates the golden JSON fixtures pinned by test_experiments.ml.

   Run from the repository root after an intentional change to the JSON
   format or to the experiment numbers:

     dune exec test/golden/gen.exe

   then review the diff before committing. *)

let fixtures =
  [ ( "test/golden/e1_small.json",
      fun () -> Core.Results.to_json (Core.E1_cc_flag.table ~ns:[ 2; 4 ] ()) );
    ( "test/golden/e4_small.json",
      fun () ->
        Core.Results.to_json (Core.E4_queue_k.table ~n:16 ~ks:[ 1; 2; 4 ] ())
    ) ]

let () =
  List.iter
    (fun (path, render) ->
      let oc = open_out_bin path in
      output_string oc (render ());
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path)
    fixtures
