(* Regenerates the golden JSON fixtures pinned by test_experiments.ml and
   test_lint.ml.

   Run from the repository root after an intentional change to the JSON
   format or to the experiment numbers:

     dune exec test/golden/gen.exe

   then review the diff before committing. *)

let fixtures =
  [ ( "test/golden/e1_small.json",
      fun () ->
        Core.Results.to_json (Core.E1_cc_flag.table ~ns:[ 2; 4 ] ()) ^ "\n" );
    ( "test/golden/e4_small.json",
      fun () ->
        Core.Results.to_json (Core.E4_queue_k.table ~n:16 ~ks:[ 1; 2; 4 ] ())
        ^ "\n" );
    ( "test/golden/lint.json",
      (* Byte-identical to `separation lint --json`, so CI can diff the
         command's raw output against this file. *)
      fun () ->
        let reports = Core.Lint_catalog.run ~n:4 () in
        let commute = Analysis.Commute_check.run () in
        Core.Results.to_json_many
          [ Core.Lint_catalog.lint_table reports;
            Core.Lint_catalog.commute_table commute ] );
    ( "test/golden/trace_cc_flag.jsonl",
      (* Byte-identical to `separation trace -a cc-flag -n 4 --format
         jsonl`, so CI can diff the command's raw output against this
         file; test_trace.ml pins the same bytes from the library side. *)
      fun () ->
        let m = Option.get (Core.Experiment.find_algorithm "cc-flag") in
        let module A = (val m : Core.Signaling.POLLING) in
        let tr = Obs.Trace.create () in
        let cfg = Core.Experiment.config_for m ~n:4 in
        let _ =
          Core.Scenario.run_phased (module A) ~model:`Dsm ~cfg ~tracer:tr ()
        in
        Obs.Sink_jsonl.to_string (Obs.Trace.events tr) );
    (* Chrome sink edge cases, pinned by test_trace.ml: an empty stream
       still renders a loadable document; a single event carries exactly
       its own track metadata; simultaneous events from two pids keep
       emission order at one tick. *)
    ("test/golden/chrome_empty.json", fun () -> Obs.Sink_chrome.to_string []);
    ( "test/golden/chrome_single.json",
      fun () ->
        Obs.Sink_chrome.to_string
          [ Obs.Event.Op_step
              { t = 1; pid = 0; kind = "write"; addr = 0; var = "B";
                home = Obs.Event.Shared; response = 1; wrote = true;
                rmr = true; messages = 1; model = "cc-wt"; call_seq = 0 } ] );
    ( "test/golden/chrome_two_pids_same_tick.json",
      fun () ->
        Obs.Sink_chrome.to_string
          [ Obs.Event.Op_step
              { t = 3; pid = 0; kind = "write"; addr = 0; var = "B";
                home = Obs.Event.Shared; response = 1; wrote = true;
                rmr = true; messages = 1; model = "cc-wt"; call_seq = 0 };
            Obs.Event.Op_step
              { t = 3; pid = 1; kind = "read"; addr = 0; var = "B";
                home = Obs.Event.Shared; response = 1; wrote = false;
                rmr = false; messages = 0; model = "cc-wt"; call_seq = 2 } ] );
    ( "test/golden/chrome_cells.json",
      (* The flat-path cells track group: same-tick traffic from two pids
         on two lanes, plus a lone roundtrip — the shape `separation
         profile --chrome-out` exports. *)
      fun () ->
        Obs.Sink_chrome.cells_to_string
          ~cell_name:(Printf.sprintf "B (a%d)")
          [ { Obs.Sink_chrome.ce_t = 2; ce_pid = 0; ce_addr = 0;
              ce_action = "invalidate"; ce_messages = 3 };
            { Obs.Sink_chrome.ce_t = 2; ce_pid = 1; ce_addr = 1;
              ce_action = "fetch"; ce_messages = 1 };
            { Obs.Sink_chrome.ce_t = 5; ce_pid = 2; ce_addr = 0;
              ce_action = "roundtrip"; ce_messages = 1 } ] ) ]

let () =
  List.iter
    (fun (path, render) ->
      let oc = open_out_bin path in
      output_string oc (render ());
      close_out oc;
      Printf.printf "wrote %s\n" path)
    fixtures
