(* Regenerates the golden JSON fixtures pinned by test_experiments.ml and
   test_lint.ml.

   Run from the repository root after an intentional change to the JSON
   format or to the experiment numbers:

     dune exec test/golden/gen.exe

   then review the diff before committing. *)

let fixtures =
  [ ( "test/golden/e1_small.json",
      fun () ->
        Core.Results.to_json (Core.E1_cc_flag.table ~ns:[ 2; 4 ] ()) ^ "\n" );
    ( "test/golden/e4_small.json",
      fun () ->
        Core.Results.to_json (Core.E4_queue_k.table ~n:16 ~ks:[ 1; 2; 4 ] ())
        ^ "\n" );
    ( "test/golden/lint.json",
      (* Byte-identical to `separation lint --json`, so CI can diff the
         command's raw output against this file. *)
      fun () ->
        let reports = Core.Lint_catalog.run ~n:4 () in
        let commute = Analysis.Commute_check.run () in
        Core.Results.to_json_many
          [ Core.Lint_catalog.lint_table reports;
            Core.Lint_catalog.commute_table commute ] ) ]

let () =
  List.iter
    (fun (path, render) ->
      let oc = open_out_bin path in
      output_string oc (render ());
      close_out oc;
      Printf.printf "wrote %s\n" path)
    fixtures
