(* Tests for the mutual-exclusion substrates: safety (via the racy-counter
   exerciser), liveness (completion under fair schedules), and the RMR
   complexity landscape of Section 3. *)

open Smr
open Test_util

let locks : (module Sync.Mutex_intf.LOCK) list =
  [ (module Sync.Tas_lock);
    (module Sync.Ttas_lock);
    (module Sync.Ticket_lock);
    (module Sync.Anderson_lock);
    (module Sync.Clh_lock);
    (module Sync.Mcs_lock);
    (module Sync.Yang_anderson);
    (module Sync.Bakery_lock) ]

let dsm layout = Cost_model.dsm layout

let cc _layout = Cc.model ~n:0 ()

let run_lock (module L : Sync.Mutex_intf.LOCK) ~model_of ~n ~entries ~policy =
  Sync.Lock_runner.run (module L) ~model_of ~n ~entries ~policy ()

let safety_cases =
  List.concat_map
    (fun (module L : Sync.Mutex_intf.LOCK) ->
      List.map
        (fun (pname, policy) ->
          case
            (Printf.sprintf "%s: mutual exclusion under %s" L.name pname)
            (fun () ->
              let o = run_lock (module L) ~model_of:dsm ~n:6 ~entries:3 ~policy in
              check_true "no lost increments" o.Sync.Lock_runner.mutual_exclusion_held;
              check_int "expected passages" 18 o.Sync.Lock_runner.passages))
        [ ("round-robin", Schedule.Round_robin);
          ("random seed 1", Schedule.Random_seed 1);
          ("random seed 99", Schedule.Random_seed 99) ])
    locks

let prop_mutex_random_schedules =
  List.map
    (fun (module L : Sync.Mutex_intf.LOCK) ->
      qcheck ~count:40
        (Printf.sprintf "%s: mutual exclusion under random schedules" L.name)
        QCheck.(pair (int_range 2 8) (int_bound 10_000))
        (fun (n, seed) ->
          let o =
            run_lock (module L) ~model_of:dsm ~n ~entries:2
              ~policy:(Schedule.Random_seed seed)
          in
          o.Sync.Lock_runner.mutual_exclusion_held))
    locks

(* RMR complexity: the Section 3 landscape, as inequalities robust to
   constant factors. *)

let per_passage (module L : Sync.Mutex_intf.LOCK) ~model_of ~n =
  (run_lock (module L) ~model_of ~n ~entries:3 ~policy:(Schedule.Random_seed 42))
    .Sync.Lock_runner.avg_rmrs_per_passage

let test_mcs_constant_both_models () =
  List.iter
    (fun model_of ->
      let small = per_passage (module Sync.Mcs_lock) ~model_of ~n:4 in
      let large = per_passage (module Sync.Mcs_lock) ~model_of ~n:32 in
      check_true
        (Printf.sprintf "mcs flat: %.1f -> %.1f" small large)
        (large < small +. 4.))
    [ dsm; cc ]

let test_yang_anderson_logarithmic () =
  let at n = per_passage (module Sync.Yang_anderson) ~model_of:dsm ~n in
  let r8 = at 8 and r32 = at 32 in
  (* log2 32 / log2 8 = 5/3: doubling-ish, far from the 4x of a linear
     lock.  Allow slack for constants. *)
  check_true
    (Printf.sprintf "ya grows sublinearly: %.1f -> %.1f" r8 r32)
    (r32 < 2.5 *. r8);
  check_true "ya grows at all" (r32 > r8)

let test_tas_linear () =
  let at n = per_passage (module Sync.Tas_lock) ~model_of:dsm ~n in
  let r4 = at 4 and r16 = at 16 in
  check_true
    (Printf.sprintf "tas grows ~linearly: %.1f -> %.1f" r4 r16)
    (r16 > 2.5 *. r4)

let test_anderson_cc_constant_dsm_growing () =
  let cc4 = per_passage (module Sync.Anderson_lock) ~model_of:cc ~n:4 in
  let cc32 = per_passage (module Sync.Anderson_lock) ~model_of:cc ~n:32 in
  let dsm4 = per_passage (module Sync.Anderson_lock) ~model_of:dsm ~n:4 in
  let dsm32 = per_passage (module Sync.Anderson_lock) ~model_of:dsm ~n:32 in
  check_true
    (Printf.sprintf "anderson flat in CC: %.1f -> %.1f" cc4 cc32)
    (cc32 < cc4 +. 4.);
  check_true
    (Printf.sprintf "anderson grows in DSM: %.1f -> %.1f" dsm4 dsm32)
    (dsm32 > 3. *. dsm4)

let test_clh_cc_local_only () =
  (* CLH spins on the predecessor's rotating node: cache-local, DSM-remote
     — the mirror image of MCS. *)
  let cc4 = per_passage (module Sync.Clh_lock) ~model_of:cc ~n:4 in
  let cc32 = per_passage (module Sync.Clh_lock) ~model_of:cc ~n:32 in
  let dsm4 = per_passage (module Sync.Clh_lock) ~model_of:dsm ~n:4 in
  let dsm32 = per_passage (module Sync.Clh_lock) ~model_of:dsm ~n:32 in
  check_true
    (Printf.sprintf "clh flat in CC: %.1f -> %.1f" cc4 cc32)
    (cc32 < cc4 +. 4.);
  check_true
    (Printf.sprintf "clh grows in DSM: %.1f -> %.1f" dsm4 dsm32)
    (dsm32 > 3. *. dsm4)

let test_ticket_fifo_but_shared_spin () =
  (* Ticket grows with N in both models (everyone spins on now-serving). *)
  let at model_of n = per_passage (module Sync.Ticket_lock) ~model_of ~n in
  check_true "ticket grows in CC" (at cc 32 > 2. *. at cc 4);
  check_true "ticket grows in DSM" (at dsm 32 > 2. *. at dsm 4)

let test_ttas_cheaper_than_tas_in_cc () =
  let tas = per_passage (module Sync.Tas_lock) ~model_of:cc ~n:16 in
  let ttas = per_passage (module Sync.Ttas_lock) ~model_of:cc ~n:16 in
  check_true
    (Printf.sprintf "ttas (%.1f) cheaper than tas (%.1f) in CC" ttas tas)
    (ttas < tas)

let test_bakery_linear_everywhere () =
  (* Bakery scans every process per passage: Θ(N) in both models. *)
  let at model_of n = per_passage (module Sync.Bakery_lock) ~model_of ~n in
  check_true "bakery grows in CC" (at cc 32 > 2. *. at cc 4);
  check_true "bakery grows in DSM" (at dsm 32 > 2. *. at dsm 4)

let test_bakery_fcfs () =
  (* First-come-first-served: a process that completes the doorway before
     another begins it must enter the critical section first.  p2 holds
     the lock while p0 then p1 finish their doorways; after p2 releases,
     p0 must win regardless of how p0/p1 interleave. *)
  let ctx = Var.Ctx.create () in
  let lock = Sync.Bakery_lock.create ctx ~n:3 in
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:3 in
  let acquire p = Program.map (fun () -> 0) (Sync.Bakery_lock.acquire lock p) in
  let release p = Program.map (fun () -> 0) (Sync.Bakery_lock.release lock p) in
  let sim, _ = Sim.run_call sim 2 ~label:"acq" (acquire 2) in
  (* Doorway completion is observable as choosing[p] back to false with a
     ticket taken; drive each process until that state. *)
  let addr_named name =
    match
      List.find_opt
        (fun a -> Var.layout_name layout a = name)
        (Var.layout_addrs layout)
    with
    | Some a -> a
    | None -> Alcotest.fail ("no variable named " ^ name)
  in
  let doorway sim p =
    let choosing_addr = addr_named (Printf.sprintf "bakery.choosing[%d]" p) in
    let number_addr = addr_named (Printf.sprintf "bakery.number[%d]" p) in
    let sim = Sim.begin_call sim p ~label:"acq" (acquire p) in
    let rec go sim fuel =
      if fuel = 0 then Alcotest.fail "doorway never completed"
      else if
        Memory.get (Sim.memory sim) number_addr > 0
        && Memory.get (Sim.memory sim) choosing_addr = 0
      then sim
      else go (Sim.advance sim p) (fuel - 1)
    in
    go sim 1_000
  in
  let sim = doorway sim 0 in
  let sim = doorway sim 1 in
  let sim, _ = Sim.run_call sim 2 ~label:"rel" (release 2) in
  (* Alternate p1-first to bias against p0; FCFS must still let p0 in. *)
  let rec race sim fuel =
    if fuel = 0 then Alcotest.fail "nobody entered"
    else if Sim.is_idle sim 0 then ()
    else if Sim.is_idle sim 1 then Alcotest.fail "p1 jumped the queue"
    else
      let sim = if Sim.is_running sim 1 then Sim.advance sim 1 else sim in
      let sim = if Sim.is_running sim 0 then Sim.advance sim 0 else sim in
      race sim (fuel - 1)
  in
  race sim 10_000

let test_exerciser_detects_broken_lock () =
  (* A "lock" that never excludes anyone must be caught by the exerciser —
     this validates the safety harness itself. *)
  let module Broken = struct
    let name = "broken"
    let primitives = [ Op.Reads_writes ]

    type t = unit

    let create _ ~n:_ = ()
    let acquire () _ = Program.return ()
    let release () _ = Program.return ()
  end in
  let o =
    run_lock (module Broken) ~model_of:dsm ~n:6 ~entries:3
      ~policy:(Schedule.Random_seed 5)
  in
  check_false "racy counter catches the violation"
    o.Sync.Lock_runner.mutual_exclusion_held

let test_uncontended_acquire_cheap () =
  (* A single process acquiring and releasing repeatedly: every lock should
     be O(1)-ish per passage without contention. *)
  List.iter
    (fun (module L : Sync.Mutex_intf.LOCK) ->
      let o = run_lock (module L) ~model_of:dsm ~n:1 ~entries:10 ~policy:Schedule.Round_robin in
      check_true
        (Printf.sprintf "%s uncontended: %.1f RMRs/passage" L.name
           o.Sync.Lock_runner.avg_rmrs_per_passage)
        (o.Sync.Lock_runner.avg_rmrs_per_passage <= 12.))
    locks

let suite =
  safety_cases
  @ prop_mutex_random_schedules
  @ [ case "mcs is O(1) in both models" test_mcs_constant_both_models;
      case "yang-anderson is ~log N" test_yang_anderson_logarithmic;
      case "tas grows linearly" test_tas_linear;
      case "anderson: CC-local only" test_anderson_cc_constant_dsm_growing;
      case "clh: CC-local only" test_clh_cc_local_only;
      case "ticket: shared spin grows in both models" test_ticket_fifo_but_shared_spin;
      case "ttas beats tas in CC" test_ttas_cheaper_than_tas_in_cc;
      case "bakery: linear in both models" test_bakery_linear_everywhere;
      case "bakery: first-come-first-served" test_bakery_fcfs;
      case "exerciser detects a broken lock" test_exerciser_detects_broken_lock;
      case "uncontended passages are cheap" test_uncontended_acquire_cheap ]
