(* Tests for the static analyzer: CFG extraction, the six claim checks
   (primitive class, spin, DSM RMRs, amortized CC RMRs, write ownership,
   independence), the cache-lattice laws, the shipped-catalog run, the
   seeded mutants, the explorer's static-independence hook, and the
   Op.commute differential check. *)

open Smr
open Test_util

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let int_prog p = Program.map (fun () -> 0) p

(* A one-shared, one-local layout plus the two cells, for hand-built
   programs. *)
let tiny () =
  let ctx = Var.Ctx.create () in
  let shared = Var.Ctx.int ctx ~name:"S" ~home:Var.Shared 0 in
  let local = Var.Ctx.int ctx ~name:"L" ~home:(Var.Module 0) 0 in
  (Var.Ctx.freeze ctx, shared, local)

let extract ?(exclusive = fun _ -> false) ?fuel program =
  Analysis.Cfg.extract ?fuel ~values:[ 0; 1 ] ~exclusive ~pid:0 program

(* --- CFG extraction --- *)

let test_cfg_straight_line () =
  let open Program.Syntax in
  let _, shared, local = tiny () in
  let prog =
    int_prog
      (let* v = Program.read shared in
       Program.write local (v + 1))
  in
  let cfg = extract prog in
  check_true "complete" cfg.Analysis.Cfg.complete;
  check_int "no cycles" 0 (List.length cfg.Analysis.Cfg.cycles);
  check_int "two invocations, branching only on the read" 3
    (Analysis.Cfg.size cfg);
  check_int "no stuck leaves" 0 cfg.Analysis.Cfg.stuck

let test_cfg_await_is_a_cycle () =
  let _, shared, _ = tiny () in
  let cfg = extract (int_prog (Program.await shared (fun v -> v = 1))) in
  check_true "complete" cfg.Analysis.Cfg.complete;
  check_true "spin loop found" (cfg.Analysis.Cfg.cycles <> [])

let test_cfg_fuel_cut () =
  let open Program.Syntax in
  let _, shared, local = tiny () in
  let prog =
    int_prog
      (let* v = Program.read shared in
       let* w = Program.read local in
       Program.write local (v + w))
  in
  let cfg = extract ~fuel:1 prog in
  check_false "fuel exhaustion reported" cfg.Analysis.Cfg.complete

let test_cfg_exclusive_pinning () =
  (* The register-once-then-spin pattern: a process writes its own cell and
     then awaits a value it already stored.  With ownership tracking the
     await resolves immediately; without it the extractor must assume the
     cell can hold anything and reports a spin loop. *)
  let open Program.Syntax in
  let _, _, local = tiny () in
  let prog =
    int_prog
      (let* () = Program.write local 1 in
       Program.await local (fun v -> v = 1))
  in
  let pinned = extract ~exclusive:(fun _ -> true) prog in
  check_int "owned cell: await resolves statically" 0
    (List.length pinned.Analysis.Cfg.cycles);
  let blind = extract prog in
  check_true "unowned cell: await is a spin loop"
    (blind.Analysis.Cfg.cycles <> [])

(* --- checks --- *)

let test_checks_spin_and_rmrs () =
  let open Program.Syntax in
  let layout, shared, local = tiny () in
  let model = Cost_model.dsm layout in
  let once =
    extract
      (int_prog
         (let* v = Program.read shared in
          Program.write local v))
  in
  check_true "one remote access"
    (Analysis.Checks.worst_rmrs ~model once = Analysis.Claims.Rmr 1);
  check_true "no spin"
    (Analysis.Checks.observed_spin ~layout once = Analysis.Claims.No_spin);
  let local_spin = extract (int_prog (Program.await local (fun v -> v = 1))) in
  check_true "local spin"
    (Analysis.Checks.observed_spin ~layout local_spin
    = Analysis.Claims.Local_spin);
  check_true "local spin costs nothing"
    (Analysis.Checks.worst_rmrs ~model local_spin = Analysis.Claims.Rmr 0);
  let remote_spin =
    extract (int_prog (Program.await shared (fun v -> v = 1)))
  in
  check_true "remote spin"
    (Analysis.Checks.observed_spin ~layout remote_spin
    = Analysis.Claims.Remote_spin);
  check_true "remote spin is unbounded"
    (Analysis.Checks.worst_rmrs ~model remote_spin = Analysis.Claims.Unbounded)

(* --- lint on hand-built entries --- *)

let entry_of ~claims ?(primitives = [ Op.Reads_writes ]) ~layout calls =
  Analysis.Registry.entry ~name:"hand-built" ~n:2 ~layout ~primitives ~claims
    calls

let test_lint_catches_false_rmr_claim () =
  let layout, shared, _ = tiny () in
  let claims =
    Analysis.Claims.
      { single_writer = [];
        const_writes = [];
        calls = [ ("touch", { spin = No_spin; dsm_rmrs = Rmr 0; cc_amortized = Amortized { steady = Unbounded; refills = 64 } }) ] }
  in
  let e =
    entry_of ~claims ~layout
      [ { Analysis.Registry.label = "touch";
          pids = [ 0 ];
          program = (fun _ -> int_prog (Program.write shared 1)) } ]
  in
  let r = Analysis.Lint.run e in
  check_false "report not ok" r.Analysis.Lint.ok;
  check_true "rmr-bound violation named"
    (List.exists (fun v -> contains v "rmr-bound") (Analysis.Lint.violations r))

let test_lint_catches_false_spin_claim () =
  let layout, shared, _ = tiny () in
  let claims =
    Analysis.Claims.
      { single_writer = [];
        const_writes = [];
        calls = [ ("wait", { spin = Local_spin; dsm_rmrs = Unbounded; cc_amortized = Amortized { steady = Unbounded; refills = 64 } }) ] }
  in
  let e =
    entry_of ~claims ~layout
      [ { Analysis.Registry.label = "wait";
          pids = [ 1 ];
          program = (fun _ -> int_prog (Program.await shared (fun v -> v = 1)))
        } ]
  in
  let r = Analysis.Lint.run e in
  check_false "report not ok" r.Analysis.Lint.ok;
  check_true "local-spin violation named"
    (List.exists
       (fun v -> contains v "local-spin")
       (Analysis.Lint.violations r))

let test_lint_catches_false_ownership_claim () =
  let layout, shared, _ = tiny () in
  let claims =
    Analysis.Claims.
      { single_writer = [ "S" ];
        const_writes = [];
        calls = [ ("touch", { spin = No_spin; dsm_rmrs = Rmr 1; cc_amortized = Amortized { steady = Unbounded; refills = 64 } }) ] }
  in
  let e =
    entry_of ~claims ~layout
      [ { Analysis.Registry.label = "touch";
          pids = [ 0; 1 ];
          program = (fun p -> int_prog (Program.write shared p)) } ]
  in
  let r = Analysis.Lint.run e in
  check_false "report not ok" r.Analysis.Lint.ok;
  check_true "write-ownership violation named"
    (List.exists
       (fun v -> contains v "write-ownership")
       (Analysis.Lint.violations r))

(* --- the shipped catalog --- *)

let test_catalog_all_shipped_pass () =
  let reports = Core.Lint_catalog.run () in
  List.iter
    (fun (r : Analysis.Lint.report) ->
      check_true
        (Printf.sprintf "%s clean (%s)" r.Analysis.Lint.entry.name
           (String.concat "; " (Analysis.Lint.violations r)))
        r.Analysis.Lint.ok)
    reports;
  check_true "catalog has the full algorithm roster"
    (List.length reports >= 20)

let test_catalog_mutants_fail_exactly () =
  let reports = Core.Lint_catalog.run ~mutants:true () in
  let failing =
    List.filter_map
      (fun (r : Analysis.Lint.report) ->
        if r.Analysis.Lint.ok then None
        else Some (r.Analysis.Lint.entry.name, Analysis.Lint.violations r))
      reports
  in
  check_int "exactly the four seeded mutants fail" 4 (List.length failing);
  let violations_of name =
    match List.assoc_opt name failing with
    | Some vs -> String.concat "; " vs
    | None -> Alcotest.failf "mutant %s did not fail" name
  in
  check_true "remote-spin mutant flagged by the local-spin check"
    (contains (violations_of Core.Lint_mutants.remote_spin_name) "local-spin");
  check_true "cas mutant flagged by the primitive-class check"
    (contains (violations_of Core.Lint_mutants.cas_flag_name) "primitive-class");
  check_true "hidden-scan mutant flagged by the amortized check"
    (contains
       (violations_of Core.Lint_mutants.amortized_scan_name)
       "amortized");
  check_true "false const-write mutant flagged by the independence check"
    (contains
       (violations_of Core.Lint_mutants.indep_fact_name)
       "independence")

(* --- the amortized cache lattice --- *)

let avails = Analysis.Absdomain.[ Owned; Valid; Invalid ]

let test_absdomain_lattice_laws () =
  let open Analysis.Absdomain in
  List.iter
    (fun a ->
      check_true "join idempotent" (join_avail a a = a);
      check_true "leq reflexive" (avail_leq a a);
      List.iter
        (fun b ->
          check_true "join commutative" (join_avail a b = join_avail b a);
          check_true "join is an upper bound"
            (avail_leq a (join_avail a b) && avail_leq b (join_avail a b)))
        avails)
    avails;
  (* transfer is monotone in the state argument: a better-cached entry
     state never costs more and never leaves a worse cache — checked over
     every regime, external classification, op shape and two-cell state
     pair (the property the steady-state fixpoint iteration relies on) *)
  let invs =
    [ Op.Read 0; Op.Write (0, 1); Op.Cas (0, 0, 1); Op.Ll 0; Op.Sc (0, 1);
      Op.Faa (0, 1); Op.Fas (0, 1); Op.Tas 0; Op.Read 1 ]
  in
  let states =
    List.concat_map
      (fun a0 -> List.map (fun a1 -> set (set top 0 a0) 1 a1) avails)
      avails
  in
  List.iter
    (fun regime ->
      List.iter
        (fun e ->
          let ext _ = e in
          List.iter
            (fun inv ->
              List.iter
                (fun s1 ->
                  List.iter
                    (fun s2 ->
                      if leq s1 s2 then begin
                        let c1, p1 = transfer regime ~ext s1 inv in
                        let c2, p2 = transfer regime ~ext s2 inv in
                        check_true "transfer cost monotone" (c1 <= c2);
                        check_true "transfer post-state monotone" (leq p1 p2)
                      end)
                    states)
                states)
            invs)
        [ Ext_none; Ext_read; Ext_mut ])
    [ Wt; Wb; Update; Any ]

let amortized_of_call (r : Analysis.Lint.report) label =
  (List.find (fun (c : Analysis.Lint.call_report) -> c.Analysis.Lint.call = label)
     r.Analysis.Lint.calls)
    .Analysis.Lint.amortized

let catalog_reports names =
  let reports = Core.Lint_catalog.run ~names () in
  fun name ->
    List.find
      (fun (r : Analysis.Lint.report) ->
        r.Analysis.Lint.entry.Analysis.Registry.name = name)
      reports

let test_amortized_proofs () =
  (* The paper's CC-side headline, proven statically: cc-flag's Signal()
     costs one RMR per call under any protocol (and its Poll() is free at
     the fixpoint, re-billed once per external signal), while
     dsm-broadcast's Signal() pays n cells every single call. *)
  let report = catalog_reports [ "cc-flag"; "dsm-broadcast"; "dsm-queue" ] in
  let s = amortized_of_call (report "cc-flag") "signal" in
  check_true "cc-flag Signal() proves 1 steady RMR"
    (s.Analysis.Amortized.steady = Analysis.Claims.Rmr 1);
  check_int "cc-flag Signal() needs no refills" 0 s.Analysis.Amortized.refills;
  check_true "cc-flag Signal() cold cost is also 1"
    (s.Analysis.Amortized.cold = Analysis.Claims.Rmr 1);
  let p = amortized_of_call (report "cc-flag") "poll" in
  check_true "cc-flag Poll() free at the cache fixpoint"
    (p.Analysis.Amortized.steady = Analysis.Claims.Rmr 0);
  check_int "cc-flag Poll() re-billed once per external signal" 1
    p.Analysis.Amortized.refills;
  let b = amortized_of_call (report "dsm-broadcast") "signal" in
  check_true "dsm-broadcast Signal() pays n RMRs every call (n = 4)"
    (b.Analysis.Amortized.steady = Analysis.Claims.Rmr 4);
  check_int "dsm-broadcast Signal() writes only, no refills" 0
    b.Analysis.Amortized.refills;
  let q = amortized_of_call (report "dsm-queue") "signal" in
  check_true "dsm-queue Signal() has no per-call steady bound (spins)"
    (q.Analysis.Amortized.steady = Analysis.Claims.Unbounded)

let test_lint_catches_false_amortized_claim () =
  (* A call that always reads a cell someone else mutates cannot claim a
     zero-refill steady state. *)
  let layout, shared, _ = tiny () in
  let claims =
    Analysis.Claims.
      { single_writer = [];
        const_writes = [];
        calls =
          [ ("touch",
             { spin = No_spin;
               dsm_rmrs = Rmr 1;
               cc_amortized = Amortized { steady = Rmr 0; refills = 0 } });
            ("dirty",
             { spin = No_spin;
               dsm_rmrs = Rmr 1;
               cc_amortized = Amortized { steady = Rmr 1; refills = 0 } }) ] }
  in
  let e =
    entry_of ~claims ~layout
      [ { Analysis.Registry.label = "touch";
          pids = [ 0 ];
          program = (fun _ -> Program.read shared) };
        { Analysis.Registry.label = "dirty";
          pids = [ 1 ];
          program = (fun _ -> int_prog (Program.write shared 1)) } ]
  in
  let r = Analysis.Lint.run e in
  check_false "report not ok" r.Analysis.Lint.ok;
  check_true "amortized violation named"
    (List.exists
       (fun v -> contains v "amortized")
       (Analysis.Lint.violations r))

(* --- static independence facts --- *)

let test_independence_facts_sound () =
  let report = catalog_reports [ "cc-flag"; "dsm-broadcast" ] in
  List.iter
    (fun name ->
      let r = report name in
      let facts = r.Analysis.Lint.facts in
      check_true
        (name ^ " has const-write facts")
        (facts.Analysis.Independence.const_writes <> []);
      check_true
        (name ^ " facts validated over real memory")
        (r.Analysis.Lint.indep_checked > 0);
      check_int (name ^ " no refutations") 0
        (List.length r.Analysis.Lint.indep_violations);
      List.iter
        (fun (a, v) ->
          let w = Op.Write (a, v) in
          check_true "const-write pair commutes under the facts"
            (Analysis.Independence.commute facts w w);
          check_false "Op.commute alone refuses same-cell writes"
            (Op.commute w w);
          (* conservativity: the extension only ever adds pairs *)
          check_true "extension preserves Op.commute"
            (Analysis.Independence.commute facts (Op.Read a) (Op.Read a)))
        facts.Analysis.Independence.const_writes)
    [ "cc-flag"; "dsm-broadcast" ]

let test_explore_static_facts_prune () =
  (* Two signalers racing Write(B, true): Op.commute calls that a
     conflict, the const-write fact proves it independent.  The extended
     relation must prune states without touching the verdict, at every
     jobs level. *)
  let n = 4 and polls = 2 in
  let ctx = Var.Ctx.create () in
  let cfg = Core.Signaling.config ~n ~waiters:[ 2; 3 ] ~signalers:[ 0; 1 ] in
  let inst = Core.Signaling.instantiate (module Core.Cc_flag) ctx cfg in
  let layout = Var.Ctx.freeze ctx in
  let scripts =
    List.map
      (fun s ->
        ( s,
          Explore.of_list
            [ (Core.Signaling.signal_label, inst.Core.Signaling.i_signal s) ]
        ))
      cfg.Core.Signaling.signalers
    @ List.map
        (fun w ->
          ( w,
            Explore.repeat ~limit:polls
              ~until:(fun r -> r = 1)
              (Core.Signaling.poll_label, inst.Core.Signaling.i_poll w) ))
        cfg.Core.Signaling.waiters
  in
  let values = Analysis.Lint.value_domain ~n ~layout in
  let cfg_of pid prog =
    (pid, Analysis.Cfg.extract ~values ~exclusive:(fun _ -> false) ~pid prog)
  in
  let facts =
    Analysis.Independence.of_cfgs
      (List.map (fun s -> cfg_of s (inst.Core.Signaling.i_signal s))
         cfg.Core.Signaling.signalers
      @ List.map (fun w -> cfg_of w (inst.Core.Signaling.i_poll w))
          cfg.Core.Signaling.waiters)
  in
  check_true "cc-flag const-write fact computed"
    (facts.Analysis.Independence.const_writes <> []);
  let run ?commute jobs =
    Explore.check ?commute ~jobs ~layout ~model:(Cost_model.dsm layout) ~n
      ~scripts ~property:Core.Signaling.polling_ok ()
  in
  let outline (r : Explore.result) =
    ( r.Explore.histories, r.Explore.truncated, r.Explore.complete,
      r.Explore.violation = None, r.Explore.stats.Explore.states,
      r.Explore.stats.Explore.dedup_hits, r.Explore.stats.Explore.por_prunes )
  in
  let plain = run 1 in
  let extended = run ~commute:(Analysis.Independence.commute facts) 1 in
  check_true "both complete" (plain.Explore.complete && extended.Explore.complete);
  check_true "verdict unchanged"
    ((plain.Explore.violation = None) = (extended.Explore.violation = None));
  check_true "no violation on cc-flag" (extended.Explore.violation = None);
  check_true "static facts prune states"
    (extended.Explore.stats.Explore.states
    < plain.Explore.stats.Explore.states);
  List.iter
    (fun jobs ->
      check_true
        (Printf.sprintf "extended run identical at jobs %d" jobs)
        (outline (run ~commute:(Analysis.Independence.commute facts) jobs)
        = outline extended);
      check_true
        (Printf.sprintf "plain run identical at jobs %d" jobs)
        (outline (run jobs) = outline plain))
    [ 2; 4 ]

(* --- the Op.commute differential check --- *)

let test_commute_exhaustive_and_sound () =
  let r = Analysis.Commute_check.run () in
  check_int "all 64 ordered kind pairs covered" 64
    r.Analysis.Commute_check.kind_pairs;
  check_int "no soundness failures" 0
    (List.length r.Analysis.Commute_check.failures);
  check_true "scenario count matches the enumeration"
    (r.Analysis.Commute_check.checked
    = r.Analysis.Commute_check.pairs * 4 * 16);
  check_true "some pairs commute, some do not"
    (r.Analysis.Commute_check.commuting > 0
    && r.Analysis.Commute_check.commuting < r.Analysis.Commute_check.checked)

(* --- golden JSON --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_lint_golden_json () =
  (* Byte-for-byte pin of `separation lint --json`; regenerate with
     `dune exec test/golden/gen.exe`. *)
  let reports = Core.Lint_catalog.run ~n:4 () in
  let commute = Analysis.Commute_check.run () in
  Alcotest.(check string)
    "golden JSON lint"
    (read_file "golden/lint.json")
    (Core.Results.to_json_many
       [ Core.Lint_catalog.lint_table reports;
         Core.Lint_catalog.commute_table commute ])

let suite =
  [ case "cfg: straight line" test_cfg_straight_line;
    case "cfg: await is a cycle" test_cfg_await_is_a_cycle;
    case "cfg: fuel cut reported" test_cfg_fuel_cut;
    case "cfg: owned-cell pinning" test_cfg_exclusive_pinning;
    case "checks: spin and rmr classification" test_checks_spin_and_rmrs;
    case "lint: false rmr claim fails" test_lint_catches_false_rmr_claim;
    case "lint: false spin claim fails" test_lint_catches_false_spin_claim;
    case "lint: false ownership claim fails"
      test_lint_catches_false_ownership_claim;
    case "catalog: every shipped algorithm passes" test_catalog_all_shipped_pass;
    case "catalog: mutants fail exactly" test_catalog_mutants_fail_exactly;
    case "absdomain: lattice laws and transfer monotonicity"
      test_absdomain_lattice_laws;
    case "amortized: cc-flag 1+0r, dsm-broadcast n, dsm-queue unbounded"
      test_amortized_proofs;
    case "lint: false amortized claim fails"
      test_lint_catches_false_amortized_claim;
    case "independence: facts computed, validated, conservative"
      test_independence_facts_sound;
    case "explore: static facts prune, verdict jobs-invariant"
      test_explore_static_facts_prune;
    case "commute: exhaustive and sound" test_commute_exhaustive_and_sound;
    case "lint golden JSON" test_lint_golden_json ]
