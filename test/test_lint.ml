(* Tests for the static analyzer: CFG extraction, the four claim checks,
   the shipped-catalog run, the seeded mutants, and the Op.commute
   differential check. *)

open Smr
open Test_util

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let int_prog p = Program.map (fun () -> 0) p

(* A one-shared, one-local layout plus the two cells, for hand-built
   programs. *)
let tiny () =
  let ctx = Var.Ctx.create () in
  let shared = Var.Ctx.int ctx ~name:"S" ~home:Var.Shared 0 in
  let local = Var.Ctx.int ctx ~name:"L" ~home:(Var.Module 0) 0 in
  (Var.Ctx.freeze ctx, shared, local)

let extract ?(exclusive = fun _ -> false) ?fuel program =
  Analysis.Cfg.extract ?fuel ~values:[ 0; 1 ] ~exclusive ~pid:0 program

(* --- CFG extraction --- *)

let test_cfg_straight_line () =
  let open Program.Syntax in
  let _, shared, local = tiny () in
  let prog =
    int_prog
      (let* v = Program.read shared in
       Program.write local (v + 1))
  in
  let cfg = extract prog in
  check_true "complete" cfg.Analysis.Cfg.complete;
  check_int "no cycles" 0 (List.length cfg.Analysis.Cfg.cycles);
  check_int "two invocations, branching only on the read" 3
    (Analysis.Cfg.size cfg);
  check_int "no stuck leaves" 0 cfg.Analysis.Cfg.stuck

let test_cfg_await_is_a_cycle () =
  let _, shared, _ = tiny () in
  let cfg = extract (int_prog (Program.await shared (fun v -> v = 1))) in
  check_true "complete" cfg.Analysis.Cfg.complete;
  check_true "spin loop found" (cfg.Analysis.Cfg.cycles <> [])

let test_cfg_fuel_cut () =
  let open Program.Syntax in
  let _, shared, local = tiny () in
  let prog =
    int_prog
      (let* v = Program.read shared in
       let* w = Program.read local in
       Program.write local (v + w))
  in
  let cfg = extract ~fuel:1 prog in
  check_false "fuel exhaustion reported" cfg.Analysis.Cfg.complete

let test_cfg_exclusive_pinning () =
  (* The register-once-then-spin pattern: a process writes its own cell and
     then awaits a value it already stored.  With ownership tracking the
     await resolves immediately; without it the extractor must assume the
     cell can hold anything and reports a spin loop. *)
  let open Program.Syntax in
  let _, _, local = tiny () in
  let prog =
    int_prog
      (let* () = Program.write local 1 in
       Program.await local (fun v -> v = 1))
  in
  let pinned = extract ~exclusive:(fun _ -> true) prog in
  check_int "owned cell: await resolves statically" 0
    (List.length pinned.Analysis.Cfg.cycles);
  let blind = extract prog in
  check_true "unowned cell: await is a spin loop"
    (blind.Analysis.Cfg.cycles <> [])

(* --- checks --- *)

let test_checks_spin_and_rmrs () =
  let open Program.Syntax in
  let layout, shared, local = tiny () in
  let model = Cost_model.dsm layout in
  let once =
    extract
      (int_prog
         (let* v = Program.read shared in
          Program.write local v))
  in
  check_true "one remote access"
    (Analysis.Checks.worst_rmrs ~model once = Analysis.Claims.Rmr 1);
  check_true "no spin"
    (Analysis.Checks.observed_spin ~layout once = Analysis.Claims.No_spin);
  let local_spin = extract (int_prog (Program.await local (fun v -> v = 1))) in
  check_true "local spin"
    (Analysis.Checks.observed_spin ~layout local_spin
    = Analysis.Claims.Local_spin);
  check_true "local spin costs nothing"
    (Analysis.Checks.worst_rmrs ~model local_spin = Analysis.Claims.Rmr 0);
  let remote_spin =
    extract (int_prog (Program.await shared (fun v -> v = 1)))
  in
  check_true "remote spin"
    (Analysis.Checks.observed_spin ~layout remote_spin
    = Analysis.Claims.Remote_spin);
  check_true "remote spin is unbounded"
    (Analysis.Checks.worst_rmrs ~model remote_spin = Analysis.Claims.Unbounded)

(* --- lint on hand-built entries --- *)

let entry_of ~claims ?(primitives = [ Op.Reads_writes ]) ~layout calls =
  Analysis.Registry.entry ~name:"hand-built" ~n:2 ~layout ~primitives ~claims
    calls

let test_lint_catches_false_rmr_claim () =
  let layout, shared, _ = tiny () in
  let claims =
    Analysis.Claims.
      { single_writer = [];
        calls = [ ("touch", { spin = No_spin; dsm_rmrs = Rmr 0 }) ] }
  in
  let e =
    entry_of ~claims ~layout
      [ { Analysis.Registry.label = "touch";
          pids = [ 0 ];
          program = (fun _ -> int_prog (Program.write shared 1)) } ]
  in
  let r = Analysis.Lint.run e in
  check_false "report not ok" r.Analysis.Lint.ok;
  check_true "rmr-bound violation named"
    (List.exists (fun v -> contains v "rmr-bound") (Analysis.Lint.violations r))

let test_lint_catches_false_spin_claim () =
  let layout, shared, _ = tiny () in
  let claims =
    Analysis.Claims.
      { single_writer = [];
        calls = [ ("wait", { spin = Local_spin; dsm_rmrs = Unbounded }) ] }
  in
  let e =
    entry_of ~claims ~layout
      [ { Analysis.Registry.label = "wait";
          pids = [ 1 ];
          program = (fun _ -> int_prog (Program.await shared (fun v -> v = 1)))
        } ]
  in
  let r = Analysis.Lint.run e in
  check_false "report not ok" r.Analysis.Lint.ok;
  check_true "local-spin violation named"
    (List.exists
       (fun v -> contains v "local-spin")
       (Analysis.Lint.violations r))

let test_lint_catches_false_ownership_claim () =
  let layout, shared, _ = tiny () in
  let claims =
    Analysis.Claims.
      { single_writer = [ "S" ];
        calls = [ ("touch", { spin = No_spin; dsm_rmrs = Rmr 1 }) ] }
  in
  let e =
    entry_of ~claims ~layout
      [ { Analysis.Registry.label = "touch";
          pids = [ 0; 1 ];
          program = (fun p -> int_prog (Program.write shared p)) } ]
  in
  let r = Analysis.Lint.run e in
  check_false "report not ok" r.Analysis.Lint.ok;
  check_true "write-ownership violation named"
    (List.exists
       (fun v -> contains v "write-ownership")
       (Analysis.Lint.violations r))

(* --- the shipped catalog --- *)

let test_catalog_all_shipped_pass () =
  let reports = Core.Lint_catalog.run () in
  List.iter
    (fun (r : Analysis.Lint.report) ->
      check_true
        (Printf.sprintf "%s clean (%s)" r.Analysis.Lint.entry.name
           (String.concat "; " (Analysis.Lint.violations r)))
        r.Analysis.Lint.ok)
    reports;
  check_true "catalog has the full algorithm roster"
    (List.length reports >= 20)

let test_catalog_mutants_fail_exactly () =
  let reports = Core.Lint_catalog.run ~mutants:true () in
  let failing =
    List.filter_map
      (fun (r : Analysis.Lint.report) ->
        if r.Analysis.Lint.ok then None
        else Some (r.Analysis.Lint.entry.name, Analysis.Lint.violations r))
      reports
  in
  check_int "exactly the two seeded mutants fail" 2 (List.length failing);
  let violations_of name =
    match List.assoc_opt name failing with
    | Some vs -> String.concat "; " vs
    | None -> Alcotest.failf "mutant %s did not fail" name
  in
  check_true "remote-spin mutant flagged by the local-spin check"
    (contains (violations_of Core.Lint_mutants.remote_spin_name) "local-spin");
  check_true "cas mutant flagged by the primitive-class check"
    (contains (violations_of Core.Lint_mutants.cas_flag_name) "primitive-class")

(* --- the Op.commute differential check --- *)

let test_commute_exhaustive_and_sound () =
  let r = Analysis.Commute_check.run () in
  check_int "all 64 ordered kind pairs covered" 64
    r.Analysis.Commute_check.kind_pairs;
  check_int "no soundness failures" 0
    (List.length r.Analysis.Commute_check.failures);
  check_true "scenario count matches the enumeration"
    (r.Analysis.Commute_check.checked
    = r.Analysis.Commute_check.pairs * 4 * 16);
  check_true "some pairs commute, some do not"
    (r.Analysis.Commute_check.commuting > 0
    && r.Analysis.Commute_check.commuting < r.Analysis.Commute_check.checked)

(* --- golden JSON --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_lint_golden_json () =
  (* Byte-for-byte pin of `separation lint --json`; regenerate with
     `dune exec test/golden/gen.exe`. *)
  let reports = Core.Lint_catalog.run ~n:4 () in
  let commute = Analysis.Commute_check.run () in
  Alcotest.(check string)
    "golden JSON lint"
    (read_file "golden/lint.json")
    (Core.Results.to_json_many
       [ Core.Lint_catalog.lint_table reports;
         Core.Lint_catalog.commute_table commute ])

let suite =
  [ case "cfg: straight line" test_cfg_straight_line;
    case "cfg: await is a cycle" test_cfg_await_is_a_cycle;
    case "cfg: fuel cut reported" test_cfg_fuel_cut;
    case "cfg: owned-cell pinning" test_cfg_exclusive_pinning;
    case "checks: spin and rmr classification" test_checks_spin_and_rmrs;
    case "lint: false rmr claim fails" test_lint_catches_false_rmr_claim;
    case "lint: false spin claim fails" test_lint_catches_false_spin_claim;
    case "lint: false ownership claim fails"
      test_lint_catches_false_ownership_claim;
    case "catalog: every shipped algorithm passes" test_catalog_all_shipped_pass;
    case "catalog: mutants fail exactly" test_catalog_mutants_fail_exactly;
    case "commute: exhaustive and sound" test_commute_exhaustive_and_sound;
    case "lint golden JSON" test_lint_golden_json ]
