(* Tests for the DSM and CC cost models, including the paper's "loose" CC
   assumption (Sec. 2) as an executable property and the Section 8 message
   accounting. *)

open Smr
open Test_util

let layout_with k =
  let ctx = Var.Ctx.create () in
  let vars =
    Array.init k (fun i ->
        Var.Ctx.int ctx ~name:(Printf.sprintf "v%d" i)
          ~home:(if i = 0 then Var.Shared else Var.Module (i - 1))
          0)
  in
  (Var.Ctx.freeze ctx, vars)

let account_seq model steps =
  (* Fold a list of (pid, inv, wrote) through a model, returning costs. *)
  let _, costs =
    List.fold_left
      (fun (m, acc) (pid, inv, wrote) ->
        let m, c = Cost_model.account m pid inv ~wrote in
        (m, c :: acc))
      (model, []) steps
  in
  List.rev costs

let rmrs costs = List.length (List.filter (fun c -> c.Cost_model.rmr) costs)

let messages costs =
  List.fold_left (fun acc c -> acc + c.Cost_model.messages) 0 costs

(* --- DSM --- *)

let test_dsm_homing () =
  let layout, vars = layout_with 3 in
  let m = Cost_model.dsm layout in
  let a_shared = Var.addr vars.(0)
  and a_p0 = Var.addr vars.(1)
  and a_p1 = Var.addr vars.(2) in
  let costs =
    account_seq m
      [ (0, Op.Read a_p0, false); (* own module: local *)
        (0, Op.Read a_p1, false); (* other module: RMR *)
        (0, Op.Read a_shared, false); (* shared module: RMR for everyone *)
        (1, Op.Write (a_p1, 5), true); (* own module *)
        (1, Op.Write (a_p0, 5), true) ]
  in
  check_true "dsm classification"
    (List.map (fun c -> c.Cost_model.rmr) costs = [ false; true; true; false; true ])

let test_dsm_spin_unbounded () =
  (* Re-reading a remote location is an RMR every time: the reason shared
     spin variables are fatal in DSM (Sec. 1). *)
  let layout, vars = layout_with 2 in
  let m = Cost_model.dsm layout in
  let a = Var.addr vars.(0) in
  let costs = account_seq m (List.init 50 (fun _ -> (0, Op.Read a, false))) in
  check_int "every remote read is an RMR" 50 (rmrs costs)

let test_dsm_predict_exact () =
  let layout, vars = layout_with 3 in
  let m = Cost_model.dsm layout in
  List.iter
    (fun (pid, inv) ->
      let predicted = Cost_model.predict m pid inv in
      let _, c = Cost_model.account m pid inv ~wrote:true in
      check_true "prediction exact" (predicted = Some c.Cost_model.rmr))
    [ (0, Op.Read (Var.addr vars.(1))); (1, Op.Write (Var.addr vars.(2), 1));
      (0, Op.Faa (Var.addr vars.(0), 1)) ]

(* --- CC write-through: the paper's loose model --- *)

let cc ?(protocol = Cc.Write_through) ?(interconnect = Cc.Bus) ?(n = 8) () =
  Cc.model ~protocol ~interconnect ~n ()

let test_cc_repeated_reads_one_rmr () =
  (* "if a process reads some memory location several times, then this
     entire sequence of reads incurs only one RMR in total provided that
     between the first and last of these reads there is no nontrivial
     operation performed by another process on that memory location" *)
  let m = cc () in
  let costs = account_seq m (List.init 20 (fun _ -> (0, Op.Read 0, false))) in
  check_int "twenty reads, one RMR" 1 (rmrs costs)

let test_cc_invalidation_then_one_more () =
  let m = cc () in
  let steps =
    List.init 10 (fun _ -> (0, Op.Read 0, false))
    @ [ (1, Op.Write (0, 5), true) ]
    @ List.init 10 (fun _ -> (0, Op.Read 0, false))
  in
  let costs = account_seq m steps in
  (* reader: 1 miss + 1 after invalidation; writer: 1 *)
  check_int "exactly three RMRs" 3 (rmrs costs)

let test_cc_trivial_op_preserves_cache () =
  (* A FAILED CAS by another process is trivial and must not invalidate. *)
  let m = cc () in
  let steps =
    [ (0, Op.Read 0, false); (1, Op.Cas (0, 99, 1), false);
      (0, Op.Read 0, false) ]
  in
  let costs = account_seq m steps in
  check_true "reader pays once"
    (List.map (fun c -> c.Cost_model.rmr) costs = [ true; true; false ])

let test_cc_wt_writes_always_remote () =
  let m = cc () in
  let costs =
    account_seq m (List.init 5 (fun i -> (0, Op.Write (0, i), true)))
  in
  check_int "write-through: every write an RMR" 5 (rmrs costs)

let test_cc_wb_owner_writes_local () =
  let m = cc ~protocol:Cc.Write_back () in
  let costs =
    account_seq m (List.init 5 (fun i -> (0, Op.Write (0, i), true)))
  in
  check_int "write-back: first write only" 1 (rmrs costs)

let test_cc_wb_ownership_migrates () =
  let m = cc ~protocol:Cc.Write_back () in
  let costs =
    account_seq m
      [ (0, Op.Write (0, 1), true); (1, Op.Write (0, 2), true);
        (0, Op.Write (0, 3), true) ]
  in
  check_int "each ownership change is an RMR" 3 (rmrs costs)

let test_lfcu_failed_comparison_local () =
  (* The defining LFCU feature (Sec. 3): a failed comparison primitive on a
     cached copy is local. *)
  let m = cc ~protocol:Cc.Write_update () in
  let costs =
    account_seq m
      [ (0, Op.Read 0, false); (* cache it *)
        (0, Op.Cas (0, 99, 1), false); (* failed CAS: local *)
        (0, Op.Cas (0, 0, 1), true) (* successful CAS: RMR *) ]
  in
  check_true "lfcu classification"
    (List.map (fun c -> c.Cost_model.rmr) costs = [ true; false; true ])

let test_lfcu_update_preserves_copies () =
  (* Write-update: a remote write refreshes copies instead of killing them,
     so the reader pays no further RMR. *)
  let m = cc ~protocol:Cc.Write_update () in
  let costs =
    account_seq m
      [ (0, Op.Read 0, false); (1, Op.Write (0, 7), true);
        (0, Op.Read 0, false) ]
  in
  check_true "reader keeps its copy"
    (List.map (fun c -> c.Cost_model.rmr) costs = [ true; true; false ])

(* --- message accounting (Sec. 8) --- *)

let share_with_k_readers ~k m =
  (* k distinct processes cache address 0. *)
  List.fold_left
    (fun m (pid, inv, wrote) -> fst (Cost_model.account m pid inv ~wrote))
    m
    (List.init k (fun p -> (p + 1, Op.Read 0, false)))

let test_messages_bus_vs_directory () =
  let writer_messages ic =
    let m = share_with_k_readers ~k:5 (cc ~interconnect:ic ~n:8 ()) in
    let _, c = Cost_model.account m 0 (Op.Write (0, 1)) ~wrote:true in
    c.Cost_model.messages
  in
  check_int "bus: one broadcast (plus memory)" 2 (writer_messages Cc.Bus);
  check_int "precise directory: one per copy (plus memory)" 6
    (writer_messages Cc.Directory_precise);
  check_int "limited directory overflows to broadcast" 8
    (writer_messages (Cc.Directory_limited 2))

let test_limited_directory_precise_when_small () =
  let m = share_with_k_readers ~k:2 (cc ~interconnect:(Cc.Directory_limited 4) ~n:8 ()) in
  let _, c = Cost_model.account m 0 (Op.Write (0, 1)) ~wrote:true in
  check_int "under the limit: precise" 3 c.Cost_model.messages

let test_invalidations_bounded_by_rmrs () =
  (* Sec. 8: "the total number of invalidations is bounded from above by
     the number of RMRs" — with a precise directory, messages count actual
     invalidations + fetches, each of which is matched by an RMR that
     created or re-created the copy. *)
  let layout, _ = layout_with 1 in
  ignore layout;
  let m = cc ~interconnect:Cc.Directory_precise ~n:4 () in
  let steps =
    [ (0, Op.Read 0, false); (1, Op.Read 0, false); (2, Op.Write (0, 1), true);
      (0, Op.Read 0, false); (3, Op.Write (0, 2), true); (1, Op.Read 0, false) ]
  in
  let costs = account_seq m steps in
  check_true "messages stay within 2x RMRs (fetch + invalidation each)"
    (messages costs <= 2 * rmrs costs)

(* Property: for every protocol, predictions that commit ([Some b]) match
   the accounted classification when the operation's nontriviality is
   whatever the predictor assumed — checked here for reads and writes whose
   outcome is fixed. *)
let prop_predict_consistent =
  qcheck "cc predict is consistent with account for reads and writes"
    QCheck.(
      pair (int_bound 2)
        (small_list (pair (int_bound 3) (pair (int_bound 2) QCheck.bool))))
    (fun (proto_i, script) ->
      let protocol =
        match proto_i with
        | 0 -> Cc.Write_through
        | 1 -> Cc.Write_back
        | _ -> Cc.Write_update
      in
      let m0 = cc ~protocol () in
      let final =
        List.fold_left
          (fun m (pid, (a, is_write)) ->
            let inv = if is_write then Op.Write (a, 1) else Op.Read a in
            let predicted = Cost_model.predict m pid inv in
            let m, c = Cost_model.account m pid inv ~wrote:is_write in
            (match predicted with
            | Some b when b <> c.Cost_model.rmr ->
              QCheck.Test.fail_reportf "prediction mismatch"
            | _ -> ());
            m)
          m0 script
      in
      ignore final;
      true)

(* Stronger property over the full operation vocabulary: replay a random
   script against real cell contents (so [wrote] is truthful, including
   failed CAS/SC), and require that whenever a model commits to a
   prediction ([Some b]), accounting the very same step classifies it the
   same way — under the DSM model and every CC protocol.  [None]
   predictions (outcome-dependent CC cases) are exercised but unchecked,
   as the contract allows. *)
let arb_full_step =
  QCheck.make
    ~print:(fun (pid, inv) ->
      Printf.sprintf "p%d:%s" pid (Op.show_invocation inv))
    QCheck.Gen.(
      pair (int_bound 3)
        (oneof
           [ map (fun a -> Op.Read a) (int_bound 2);
             map2 (fun a v -> Op.Write (a, v)) (int_bound 2) (int_bound 3);
             map3
               (fun a e u -> Op.Cas (a, e, u))
               (int_bound 2) (int_bound 3) (int_bound 3);
             map (fun a -> Op.Ll a) (int_bound 2);
             map2 (fun a v -> Op.Sc (a, v)) (int_bound 2) (int_bound 3);
             map2 (fun a d -> Op.Faa (a, d)) (int_bound 2) (int_bound 3);
             map2 (fun a v -> Op.Fas (a, v)) (int_bound 2) (int_bound 3);
             map (fun a -> Op.Tas a) (int_bound 2) ]))

let prop_predict_never_contradicts_account =
  qcheck "predict Some b matches account across all models and op kinds"
    QCheck.(small_list arb_full_step)
    (fun script ->
      let layout, vars = layout_with 3 in
      let addr i = Var.addr vars.(i) in
      (* Replay once against concrete cell contents to learn each step's
         actual nontriviality, rebasing the generator's small addresses
         onto the layout's. *)
      let values = Hashtbl.create 3 in
      let links = Hashtbl.create 8 in
      let steps =
        List.map
          (fun (pid, inv) ->
            let inv =
              match inv with
              | Op.Read a -> Op.Read (addr a)
              | Op.Write (a, v) -> Op.Write (addr a, v)
              | Op.Cas (a, e, u) -> Op.Cas (addr a, e, u)
              | Op.Ll a -> Op.Ll (addr a)
              | Op.Sc (a, v) -> Op.Sc (addr a, v)
              | Op.Faa (a, d) -> Op.Faa (addr a, d)
              | Op.Fas (a, v) -> Op.Fas (addr a, v)
              | Op.Tas a -> Op.Tas (addr a)
            in
            let a = Op.addr_of inv in
            let current = Option.value ~default:0 (Hashtbl.find_opt values a) in
            let ll_valid = Hashtbl.mem links (pid, a) in
            let e = Op.execute ~current ~ll_valid inv in
            (match inv with Op.Ll _ -> Hashtbl.replace links (pid, a) () | _ -> ());
            (match e.Op.new_value with
            | Some v ->
              Hashtbl.replace values a v;
              (* A nontrivial operation breaks every link on the cell. *)
              Hashtbl.iter
                (fun (q, b) () -> if b = a then Hashtbl.remove links (q, b))
                (Hashtbl.copy links)
            | None -> ());
            (match inv with Op.Sc _ -> Hashtbl.remove links (pid, a) | _ -> ());
            (pid, inv, e.Op.new_value <> None))
          script
      in
      let models =
        Cost_model.dsm layout
        :: List.map
             (fun protocol -> cc ~protocol ~n:4 ())
             [ Cc.Write_through; Cc.Write_back; Cc.Write_update ]
      in
      List.for_all
        (fun m0 ->
          let final =
            List.fold_left
              (fun m (pid, inv, wrote) ->
                let predicted = Cost_model.predict m pid inv in
                let m, c = Cost_model.account m pid inv ~wrote in
                (match predicted with
                | Some b when b <> c.Cost_model.rmr ->
                  QCheck.Test.fail_reportf
                    "%s: predicted rmr=%b but accounted rmr=%b for p%d:%s"
                    (Cost_model.name m) b c.Cost_model.rmr pid
                    (Op.show_invocation inv)
                | _ -> ());
                m)
              m0 steps
          in
          ignore final;
          true)
        models)

let suite =
  [ case "dsm homing" test_dsm_homing;
    case "dsm remote spin is unbounded" test_dsm_spin_unbounded;
    case "dsm prediction is exact" test_dsm_predict_exact;
    case "cc: repeated reads cost one RMR" test_cc_repeated_reads_one_rmr;
    case "cc: invalidation costs one more" test_cc_invalidation_then_one_more;
    case "cc: trivial ops preserve caches" test_cc_trivial_op_preserves_cache;
    case "cc-wt: writes always remote" test_cc_wt_writes_always_remote;
    case "cc-wb: owner writes local" test_cc_wb_owner_writes_local;
    case "cc-wb: ownership migration" test_cc_wb_ownership_migrates;
    case "lfcu: failed comparison local" test_lfcu_failed_comparison_local;
    case "lfcu: updates preserve copies" test_lfcu_update_preserves_copies;
    case "messages: bus vs directory" test_messages_bus_vs_directory;
    case "limited directory precise when small" test_limited_directory_precise_when_small;
    case "invalidations bounded by RMRs" test_invalidations_bounded_by_rmrs;
    prop_predict_consistent;
    prop_predict_never_contradicts_account ]
