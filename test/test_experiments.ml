(* Smoke and shape tests for the experiment drivers: every table builds,
   and the headline shapes match the paper's claims. *)

open Test_util
open Core

let test_e1_flat () =
  let t = Experiment.e1 ~ns:[ 2; 64 ] () in
  ignore (Report.to_string t);
  (* Shape is asserted directly against the scenario here. *)
  let per n =
    let cfg = Experiment.config_for (module Cc_flag) ~n in
    (Scenario.run_phased (module Cc_flag) ~model:`Cc_wt ~cfg ())
      .Scenario.max_waiter_rmrs
  in
  check_int "waiter cost independent of N" (per 2) (per 128)

let test_e2_separation () =
  ignore (Report.to_string (Experiment.e2 ~ns:[ 8; 16 ] ()));
  let am n = (Adversary.run (module Dsm_broadcast) ~n ()).Adversary.amortized in
  let aq n = (Adversary.run (module Dsm_queue) ~n ()).Adversary.amortized in
  check_true "read/write amortized grows" (am 32 > am 8 +. 10.);
  check_true "F&I amortized flat" (Float.abs (aq 32 -. aq 8) < 2.)

let test_e3_builds () =
  match Experiment.e3 ~n:16 ~partial:4 () with
  | [ full; partial ] ->
    check_true "full table renders" (String.length (Report.to_string full) > 0);
    check_true "partial table renders"
      (String.length (Report.to_string partial) > 0)
  | _ -> Alcotest.fail "expected two tables"

let test_e4_flat () =
  ignore (Report.to_string (Experiment.e4 ~n:32 ~ks:[ 1; 8; 31 ] ()))

let test_e5_builds () =
  ignore (Report.to_string (Experiment.e5 ~n:16 ()))

let test_e6_exchange_rate () =
  ignore (Report.to_string (Experiment.e6 ~ns:[ 8 ] ()));
  (* Directory messages exceed bus messages for the same run. *)
  let messages ic =
    let cfg = Experiment.config_for (module Cc_flag) ~n:32 in
    (Scenario.run_phased (module Cc_flag)
       ~model:(`Cc (Smr.Cc.Write_through, ic))
       ~cfg ())
      .Scenario.total_messages
  in
  check_true "directory sends more messages than bus"
    (messages Smr.Cc.Directory_precise > messages Smr.Cc.Bus)

let test_e7_builds () =
  ignore (Report.to_string (Experiment.e7 ~ns:[ 2; 4 ] ~entries:2 ()))

let test_e8_contention_shape () =
  (match Experiment.e8 ~n:64 ~ks:[ 2; 16 ] () with
  | [ a; b ] ->
    ignore (Report.to_string a);
    ignore (Report.to_string b)
  | _ -> Alcotest.fail "expected two tables");
  let cas k = Experiment.contention_total (module Cas_register) ~n:64 ~k in
  let fai k = Experiment.contention_total (module Dsm_queue) ~n:64 ~k in
  (* CAS cost superlinear: per-waiter cost grows; F&I per-waiter flat. *)
  check_true "cas per-waiter grows"
    (float_of_int (cas 32) /. 32. > 2. *. (float_of_int (cas 4) /. 4.));
  check_int "fai per-waiter flat" (fai 4 / 4) (fai 32 / 32)

let test_e9_builds () =
  ignore (Report.to_string (Experiment.e9 ~n:16 ()))

let test_find_algorithm () =
  check_true "lookup by name"
    (match Experiment.find_algorithm "dsm-queue" with
    | Some (module A : Signaling.POLLING) -> A.name = "dsm-queue"
    | None -> false);
  check_true "unknown name" (Experiment.find_algorithm "nope" = None)

let test_e1_golden () =
  (* The experiment tables are fully deterministic: pin E1's text at small
     sizes as a regression net over the whole stack (layout, scheduler,
     cost model, accounting, rendering). *)
  let got = Report.to_string (Experiment.e1 ~ns:[ 2; 4 ] ()) in
  let expected =
    "E1 (Sec. 5): cc-flag under CC write-through — per-process RMRs must \
     stay O(1) as N grows\n\
    \  N  waiter max  signaler  total  amortized  violations\n\
    \  -  ----------  --------  -----  ---------  ----------\n\
    \  2  2           1         3      1.50       0         \n\
    \  4  2           1         7      1.75       0         \n"
  in
  Alcotest.(check string) "golden E1" expected got

let test_e2_golden_numbers () =
  (* Pin the headline numbers at one size. *)
  let r = Adversary.run (module Dsm_broadcast) ~n:16 () in
  check_int "signaler RMRs" 15
    (match r.Adversary.chase with Some c -> c.Adversary.signaler_rmrs | None -> -1);
  check_int "participants" 1 r.Adversary.participants;
  check_int "total" 15 r.Adversary.total_rmrs;
  let q = Adversary.run (module Dsm_queue) ~n:16 () in
  check_int "queue participants" 16 q.Adversary.participants;
  check_int "queue blocked erasures" 14
    (match q.Adversary.chase with
    | Some c -> c.Adversary.chase_erase_failures
    | None -> -1)

let test_report_csv () =
  let t =
    Report.make ~title:"t" ~header:[ "a"; "b" ]
      [ [ "1"; "x,y" ]; [ "2"; "say \"hi\"" ] ]
  in
  let csv = Report.to_csv t in
  check_true "header line" (String.length csv > 0);
  check_true "separator quoting"
    (csv = "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n")

let test_report_rendering () =
  let t =
    Report.make ~title:"t" ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; Report.float 1.5 ] ]
  in
  let s = Report.to_string t in
  check_true "title present" (String.length s > 0);
  (* Columns are aligned: every data line has the same prefix width. *)
  let lines = String.split_on_char '\n' s in
  check_true "several lines" (List.length lines >= 4)

let suite =
  [ case "E1 is flat in N" test_e1_flat;
    case "E2 exhibits the separation" test_e2_separation;
    case "E3 tables build" test_e3_builds;
    case "E4 builds" test_e4_flat;
    case "E5 builds" test_e5_builds;
    case "E6 exchange rate" test_e6_exchange_rate;
    case "E7 builds" test_e7_builds;
    case "E8 contention shapes" test_e8_contention_shape;
    case "E9 builds" test_e9_builds;
    case "algorithm registry lookup" test_find_algorithm;
    case "E1 golden output" test_e1_golden;
    case "E2 golden numbers" test_e2_golden_numbers;
    case "report csv" test_report_csv;
    case "report rendering" test_report_rendering ]
