(* Smoke and shape tests for the experiment drivers: every table builds,
   and the headline shapes match the paper's claims. *)

open Test_util
open Core

let test_e1_flat () =
  let t = Experiment.e1 ~ns:[ 2; 64 ] () in
  ignore (Report.to_string t);
  (* Shape is asserted directly against the scenario here. *)
  let per n =
    let cfg = Experiment.config_for (module Cc_flag) ~n in
    (Scenario.run_phased (module Cc_flag) ~model:`Cc_wt ~cfg ())
      .Scenario.max_waiter_rmrs
  in
  check_int "waiter cost independent of N" (per 2) (per 128)

let test_e2_separation () =
  ignore (Report.to_string (Experiment.e2 ~ns:[ 8; 16 ] ()));
  let am n = (Adversary.run (module Dsm_broadcast) ~n ()).Adversary.amortized in
  let aq n = (Adversary.run (module Dsm_queue) ~n ()).Adversary.amortized in
  check_true "read/write amortized grows" (am 32 > am 8 +. 10.);
  check_true "F&I amortized flat" (Float.abs (aq 32 -. aq 8) < 2.)

let test_e3_builds () =
  match Experiment.e3 ~n:16 ~partial:4 () with
  | [ full; partial ] ->
    check_true "full table renders" (String.length (Report.to_string full) > 0);
    check_true "partial table renders"
      (String.length (Report.to_string partial) > 0)
  | _ -> Alcotest.fail "expected two tables"

let test_e4_flat () =
  ignore (Report.to_string (Experiment.e4 ~n:32 ~ks:[ 1; 8; 31 ] ()))

let test_e5_builds () =
  ignore (Report.to_string (Experiment.e5 ~n:16 ()))

let test_e6_exchange_rate () =
  ignore (Report.to_string (Experiment.e6 ~ns:[ 8 ] ()));
  (* Directory messages exceed bus messages for the same run. *)
  let messages ic =
    let cfg = Experiment.config_for (module Cc_flag) ~n:32 in
    (Scenario.run_phased (module Cc_flag)
       ~model:(`Cc (Smr.Cc.Write_through, ic))
       ~cfg ())
      .Scenario.total_messages
  in
  check_true "directory sends more messages than bus"
    (messages Smr.Cc.Directory_precise > messages Smr.Cc.Bus)

let test_e7_builds () =
  ignore (Report.to_string (Experiment.e7 ~ns:[ 2; 4 ] ~entries:2 ()))

let test_e8_contention_shape () =
  (match Experiment.e8 ~n:64 ~ks:[ 2; 16 ] () with
  | [ a; b ] ->
    ignore (Report.to_string a);
    ignore (Report.to_string b)
  | _ -> Alcotest.fail "expected two tables");
  let cas k = Experiment.contention_total (module Cas_register) ~n:64 ~k in
  let fai k = Experiment.contention_total (module Dsm_queue) ~n:64 ~k in
  (* CAS cost superlinear: per-waiter cost grows; F&I per-waiter flat. *)
  check_true "cas per-waiter grows"
    (float_of_int (cas 32) /. 32. > 2. *. (float_of_int (cas 4) /. 4.));
  check_int "fai per-waiter flat" (fai 4 / 4) (fai 32 / 32)

let test_e9_builds () =
  ignore (Report.to_string (Experiment.e9 ~n:16 ()))

let test_find_algorithm () =
  check_true "lookup by name"
    (match Experiment.find_algorithm "dsm-queue" with
    | Some (module A : Signaling.POLLING) -> A.name = "dsm-queue"
    | None -> false);
  check_true "unknown name" (Experiment.find_algorithm "nope" = None)

let test_e1_golden () =
  (* The experiment tables are fully deterministic: pin E1's text at small
     sizes as a regression net over the whole stack (layout, scheduler,
     cost model, accounting, rendering). *)
  let got = Report.to_string (Experiment.e1 ~ns:[ 2; 4 ] ()) in
  let expected =
    "E1 (Sec. 5): cc-flag under CC write-through — per-process RMRs must \
     stay O(1) as N grows\n\
    \  N  waiter max  signaler  total  amortized  violations\n\
    \  -  ----------  --------  -----  ---------  ----------\n\
    \  2  2           1         3      1.50       0         \n\
    \  4  2           1         7      1.75       0         \n"
  in
  Alcotest.(check string) "golden E1" expected got

let test_e2_golden_numbers () =
  (* Pin the headline numbers at one size. *)
  let r = Adversary.run (module Dsm_broadcast) ~n:16 () in
  check_int "signaler RMRs" 15
    (match r.Adversary.chase with Some c -> c.Adversary.signaler_rmrs | None -> -1);
  check_int "participants" 1 r.Adversary.participants;
  check_int "total" 15 r.Adversary.total_rmrs;
  let q = Adversary.run (module Dsm_queue) ~n:16 () in
  check_int "queue participants" 16 q.Adversary.participants;
  check_int "queue blocked erasures" 14
    (match q.Adversary.chase with
    | Some c -> c.Adversary.chase_erase_failures
    | None -> -1)

(* --- registry, runner, and golden JSON --- *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_registry () =
  let ids = Experiment_registry.ids () in
  check_int "15 experiments registered" 15 (List.length ids);
  check_true "ids unique" (List.sort_uniq compare ids = List.sort compare ids);
  check_true "find by id"
    (match Experiment_registry.find "e5" with
    | Some s -> s.Experiment_def.id = "e5"
    | None -> false);
  check_true "find unknown" (Experiment_registry.find "e99" = None);
  check_true "find_exn unknown raises with the valid ids"
    (match Experiment_registry.find_exn "e99" with
    | exception Invalid_argument msg ->
      List.for_all
        (fun id ->
          let n = String.length id and h = String.length msg in
          let rec go i =
            i + n <= h && (String.sub msg i n = id || go (i + 1))
          in
          go 0)
        ids
    | _ -> false)

let test_runner_shapes () =
  (* Default-size runs carry their shape verdict; Reduced runs skip it
     (the reduced parameter sets are too small for growth checks). *)
  let e1 = Experiment_registry.find_exn "e1" in
  (match Runner.run ~jobs:1 ~size:Experiment_def.Default [ e1 ] with
  | [ o ] ->
    check_true "e1 default shape ok" (o.Runner.shape = Some (Ok ()));
    check_true "tables tagged e1"
      (List.for_all (fun t -> t.Results.experiment = "e1") o.Runner.tables)
  | _ -> Alcotest.fail "expected one outcome");
  match Runner.run ~jobs:1 ~size:Experiment_def.Reduced [ e1 ] with
  | [ o ] -> check_true "reduced skips shape" (o.Runner.shape = None)
  | _ -> Alcotest.fail "expected one outcome"

let test_jobs_deterministic () =
  (* The --jobs guarantee: parallel and sequential runs are byte-identical.
     The whole reduced suite through the runner, JSON-rendered, at 1 vs 2
     domains. *)
  let render jobs =
    Results.to_json_many
      (Runner.tables
         (Runner.run ~jobs ~size:Experiment_def.Reduced
            (Experiment_registry.all ())))
  in
  Alcotest.(check string) "jobs=2 byte-identical to jobs=1" (render 1)
    (render 2)

let test_e1_golden_json () =
  (* Byte-for-byte pin of the stable JSON format on a tiny deterministic
     table; regenerate with `dune exec test/golden/gen.exe`. *)
  Alcotest.(check string)
    "golden JSON e1"
    (read_file "golden/e1_small.json")
    (Results.to_json (E1_cc_flag.table ~ns:[ 2; 4 ] ()) ^ "\n")

let test_e4_golden_json () =
  Alcotest.(check string)
    "golden JSON e4"
    (read_file "golden/e4_small.json")
    (Results.to_json (E4_queue_k.table ~n:16 ~ks:[ 1; 2; 4 ] ()) ^ "\n")

let test_report_csv () =
  let t =
    Report.make ~title:"t" ~header:[ "a"; "b" ]
      [ [ "1"; "x,y" ]; [ "2"; "say \"hi\"" ] ]
  in
  let csv = Report.to_csv t in
  check_true "header line" (String.length csv > 0);
  check_true "separator quoting"
    (csv = "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n")

let test_report_rendering () =
  let t =
    Report.make ~title:"t" ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; Report.float 1.5 ] ]
  in
  let s = Report.to_string t in
  check_true "title present" (String.length s > 0);
  (* Columns are aligned: every data line has the same prefix width. *)
  let lines = String.split_on_char '\n' s in
  check_true "several lines" (List.length lines >= 4)

let suite =
  [ case "E1 is flat in N" test_e1_flat;
    case "E2 exhibits the separation" test_e2_separation;
    case "E3 tables build" test_e3_builds;
    case "E4 builds" test_e4_flat;
    case "E5 builds" test_e5_builds;
    case "E6 exchange rate" test_e6_exchange_rate;
    case "E7 builds" test_e7_builds;
    case "E8 contention shapes" test_e8_contention_shape;
    case "E9 builds" test_e9_builds;
    case "algorithm registry lookup" test_find_algorithm;
    case "experiment registry" test_registry;
    case "runner shape verdicts" test_runner_shapes;
    case "runner jobs determinism" test_jobs_deterministic;
    case "E1 golden JSON" test_e1_golden_json;
    case "E4 golden JSON" test_e4_golden_json;
    case "E1 golden output" test_e1_golden;
    case "E2 golden numbers" test_e2_golden_numbers;
    case "report csv" test_report_csv;
    case "report rendering" test_report_rendering ]
