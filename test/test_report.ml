(* Rendering-layer tests: Report CSV quoting (RFC 4180) and the typed
   Results layer (construction, accessors, CSV/JSON renderers). *)

open Test_util
open Core

(* --- Report CSV quoting --- *)

let csv_of_cell c =
  (* Render a one-cell table and strip the header line and the trailing
     newline, leaving exactly the quoted cell (which may itself contain
     newlines, so no line splitting here). *)
  let csv = Report.to_csv (Report.make ~title:"t" ~header:[ "h" ] [ [ c ] ]) in
  let prefix = "h\n" in
  if
    String.length csv >= String.length prefix + 1
    && String.sub csv 0 (String.length prefix) = prefix
    && csv.[String.length csv - 1] = '\n'
  then
    String.sub csv (String.length prefix)
      (String.length csv - String.length prefix - 1)
  else Alcotest.failf "unexpected CSV shape: %S" csv

let test_csv_plain () =
  check_true "plain cell unquoted" (csv_of_cell "abc" = "abc");
  check_true "empty cell unquoted" (csv_of_cell "" = "")

let test_csv_comma () =
  check_true "comma quoted" (csv_of_cell "x,y" = "\"x,y\"")

let test_csv_quote () =
  check_true "quote doubled and quoted"
    (csv_of_cell "say \"hi\"" = "\"say \"\"hi\"\"\"")

let test_csv_newline () =
  check_true "LF quoted" (csv_of_cell "a\nb" = "\"a\nb\"")

let test_csv_cr () =
  (* RFC 4180: a bare CR must be quoted too, not only LF. *)
  check_true "CR quoted" (csv_of_cell "a\rb" = "\"a\rb\"");
  check_true "CRLF quoted" (csv_of_cell "a\r\nb" = "\"a\r\nb\"")

(* --- Results: a small table exercising every value constructor --- *)

let sample () =
  Results.make ~experiment:"ex" ~part:"a" ~title:"sample" ~claim:"claim"
    ~params:[ ("n", Results.int 4) ]
    ~columns:Results.[ param "k"; measure "m"; measure "ok"; measure "who" ]
    Results.
      [ [ int 1; float 1.5; bool true; text "p,q" ];
        [ int 2; float ~digits:3 0.125; bool false; text "r" ] ]

let test_results_make_validates () =
  check_true "ragged row rejected"
    (match
       Results.make ~experiment:"ex" ~title:"t" ~claim:"c"
         ~columns:[ Results.param "a" ]
         [ [ Results.int 1; Results.int 2 ] ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_results_accessors () =
  let t = sample () in
  check_true "rows_where finds row"
    (match Results.rows_where t "k" (Results.Int 2) with
    | [ row ] -> Results.get t ~row "who" = Results.Text "r"
    | _ -> false);
  check_true "column_values in order"
    (List.filter_map Results.to_int (Results.column_values t "k") = [ 1; 2 ]);
  check_true "to_float accepts Int"
    (Results.to_float (Results.int 3) = Some 3.);
  check_true "get unknown column raises"
    (match Results.get t ~row:(List.hd t.Results.rows) "nope" with
    | exception Not_found -> true
    | _ -> false)

let test_results_render () =
  check_true "bool renders yes" (Results.render_value (Results.bool true) = "yes");
  check_true "float keeps digits"
    (Results.render_value (Results.float ~digits:3 0.125) = "0.125");
  check_true "default two digits"
    (Results.render_value (Results.float 1.5) = "1.50")

let test_results_csv () =
  let csv = Results.to_csv (sample ()) in
  check_true "csv matches"
    (csv = "k,m,ok,who\n1,1.50,yes,\"p,q\"\n2,0.125,no,r\n")

let test_results_json () =
  let json = Results.to_json (sample ()) in
  (* Spot-check the stable rendering rules rather than pinning the whole
     document (the golden tests in test_experiments.ml do that). *)
  check_true "part present" (String.length json > 0);
  check_true "fixed decimals in JSON"
    (List.exists
       (fun line ->
         line = "    {\"k\": 2, \"m\": 0.125, \"ok\": false, \"who\": \"r\"}")
       (String.split_on_char '\n' json));
  check_true "text escaped"
    (let j =
       Results.to_json
         (Results.make ~experiment:"ex" ~title:"quote \"q\"" ~claim:"c"
            ~columns:[ Results.param "a" ]
            [ [ Results.text "b\\c" ] ])
     in
     let contains needle hay =
       let n = String.length needle and h = String.length hay in
       let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
       go 0
     in
     contains "quote \\\"q\\\"" j && contains "b\\\\c" j)

let test_results_json_many () =
  let t = sample () in
  let many = Results.to_json_many [ t; t ] in
  check_true "array document"
    (String.length many > 3
    && many.[0] = '['
    && String.sub many (String.length many - 2) 2 = "]\n");
  check_true "empty list renders" (Results.to_json_many [] = "[]\n")

let suite =
  [ case "csv plain cells" test_csv_plain;
    case "csv comma quoted" test_csv_comma;
    case "csv quote doubled" test_csv_quote;
    case "csv newline quoted" test_csv_newline;
    case "csv carriage return quoted" test_csv_cr;
    case "results make validates widths" test_results_make_validates;
    case "results typed accessors" test_results_accessors;
    case "results value rendering" test_results_render;
    case "results csv" test_results_csv;
    case "results json rendering" test_results_json;
    case "results json array" test_results_json_many ]
