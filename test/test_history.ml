(* Tests for the history predicates of Section 6 (sees, touches,
   regularity) and for re-accounting. *)

open Smr
open Test_util

let mk_step ?(time = 0) ?(wrote = false) ?read_from ?(home = Var.Shared)
    ?(rmr = false) ?(messages = 0) ~pid inv response =
  { History.time;
    pid;
    inv;
    response;
    wrote;
    read_from;
    home;
    rmr;
    messages;
    call_seq = 0 }

let test_sees () =
  let steps =
    [ mk_step ~pid:1 (Op.Write (0, 5)) 0 ~wrote:true;
      mk_step ~pid:2 (Op.Read 0) 5 ~read_from:1 ]
  in
  check_true "p2 sees p1" (History.sees steps ~p:2 ~q:1);
  check_false "p1 does not see p2" (History.sees steps ~p:1 ~q:2);
  check_true "all_sees" (History.all_sees steps = [ (2, 1) ])

let test_self_sees_excluded () =
  let steps =
    [ mk_step ~pid:1 (Op.Write (0, 5)) 0 ~wrote:true;
      mk_step ~pid:1 (Op.Read 0) 5 ~read_from:1 ]
  in
  check_true "reading your own write is not seeing" (History.all_sees steps = [])

let test_touches () =
  let steps = [ mk_step ~pid:0 (Op.Read 3) 0 ~home:(Var.Module 2) ] in
  check_true "p0 touches p2" (History.touches steps ~p:0 ~q:2);
  check_false "own module is not a touch"
    (History.touches [ mk_step ~pid:2 (Op.Read 3) 0 ~home:(Var.Module 2) ] ~p:2 ~q:2)

let test_regularity_clean () =
  let steps =
    [ mk_step ~pid:0 (Op.Read 0) 0;
      mk_step ~pid:1 (Op.Write (1, 5)) 0 ~wrote:true ]
  in
  check_true "independent accesses are regular"
    (History.is_regular steps ~finished:(fun _ -> false))

let test_regularity_sees_violation () =
  let steps =
    [ mk_step ~pid:1 (Op.Write (0, 5)) 0 ~wrote:true;
      mk_step ~pid:2 (Op.Read 0) 5 ~read_from:1 ]
  in
  check_false "seeing an active process is irregular"
    (History.is_regular steps ~finished:(fun _ -> false));
  check_true "seeing a finished process is fine"
    (History.is_regular steps ~finished:(fun q -> q = 1))

let test_regularity_touch_violation () =
  let steps = [ mk_step ~pid:0 (Op.Read 3) 0 ~home:(Var.Module 2) ] in
  check_false "touching an active process is irregular"
    (History.is_regular steps ~finished:(fun _ -> false));
  check_true "touching a finished process is fine"
    (History.is_regular steps ~finished:(fun q -> q = 2))

let test_regularity_multi_writer () =
  let steps =
    [ mk_step ~pid:1 (Op.Write (0, 1)) 0 ~wrote:true;
      mk_step ~pid:2 (Op.Write (0, 2)) 0 ~wrote:true ]
  in
  check_true "multi-writer vars found"
    (History.multi_writer_last steps = [ (0, 2) ]);
  check_false "active last writer of a contested var is irregular"
    (History.is_regular steps ~finished:(fun _ -> false));
  check_true "finished last writer is fine"
    (History.is_regular steps ~finished:(fun q -> q = 2))

let test_single_writer_not_flagged () =
  let steps =
    [ mk_step ~pid:1 (Op.Write (0, 1)) 0 ~wrote:true;
      mk_step ~pid:1 (Op.Write (0, 2)) 0 ~wrote:true ]
  in
  check_true "one writer twice is not multi-writer"
    (History.multi_writer_last steps = [])

let test_tally () =
  let steps =
    [ mk_step ~pid:0 (Op.Read 0) 0 ~rmr:true ~messages:2;
      mk_step ~pid:0 (Op.Read 0) 0;
      mk_step ~pid:1 (Op.Read 0) 0 ~rmr:true ~messages:1 ]
  in
  let t = History.tally_by_pid steps in
  let t0 = History.Pid_map.find 0 t in
  check_int "p0 steps" 2 t0.History.t_steps;
  check_int "p0 rmrs" 1 t0.History.t_rmrs;
  check_int "p0 messages" 2 t0.History.t_messages;
  check_int "total rmrs" 2 (History.total_rmrs steps);
  check_int "total messages" 3 (History.total_messages steps)

let test_reaccount () =
  (* Execute a small workload under DSM, re-account under CC, and confirm
     the CC numbers match a direct CC run. *)
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:(Var.Module 1) 0 in
  let layout = Var.Ctx.freeze ctx in
  let prog =
    let open Program.Syntax in
    let* _ = Program.read x in
    let* _ = Program.read x in
    Program.write x 5
  in
  let run model =
    let sim = Sim.create ~model ~layout ~n:2 in
    run_unit sim prog
  in
  let dsm_sim = run (Cost_model.dsm layout) in
  let cc_model () = Cc.model ~n:2 () in
  let cc_sim = run (cc_model ()) in
  let reaccounted = History.reaccount (cc_model ()) (Sim.steps dsm_sim) in
  check_int "reaccounted RMRs match a direct CC run"
    (History.total_rmrs (Sim.steps cc_sim))
    (History.total_rmrs reaccounted);
  (* DSM: all three ops remote (x homed at p1, run by p0) = 3 RMRs;
     CC: one read miss + write = 2. *)
  check_int "dsm total" 3 (Sim.total_rmrs dsm_sim);
  check_int "cc total" 2 (History.total_rmrs reaccounted)

let suite =
  [ case "sees" test_sees;
    case "self-reads are not sees" test_self_sees_excluded;
    case "touches" test_touches;
    case "regular history accepted" test_regularity_clean;
    case "sees-active violation" test_regularity_sees_violation;
    case "touches-active violation" test_regularity_touch_violation;
    case "multi-writer violation" test_regularity_multi_writer;
    case "single writer not flagged" test_single_writer_not_flagged;
    case "tallies" test_tally;
    case "reaccounting matches direct run" test_reaccount ]
