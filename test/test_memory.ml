(* Tests for the persistent memory store: values, last-writer tracking,
   writer sets and load-link validity. *)

open Smr
open Test_util

let setup () =
  let ctx = Var.Ctx.create () in
  let x = Var.Ctx.int ctx ~name:"x" ~home:Var.Shared 7 in
  let y = Var.Ctx.int ctx ~name:"y" ~home:(Var.Module 1) 0 in
  let layout = Var.Ctx.freeze ctx in
  (Memory.create layout, x, y)

let test_initial_values () =
  let mem, x, y = setup () in
  check_int "declared initial value" 7 (Memory.get mem (Var.addr x));
  check_int "zero default" 0 (Memory.get mem (Var.addr y));
  check_true "no initial writer" (Memory.last_writer mem (Var.addr x) = None)

let test_write_updates () =
  let mem, x, _ = setup () in
  let a = Var.addr x in
  let { Memory.memory; response; wrote; read_from } =
    Memory.apply mem ~pid:2 (Op.Write (a, 55))
  in
  check_int "write responds 0" 0 response;
  check_true "write is nontrivial" wrote;
  check_true "blind write observes nothing" (read_from = None);
  check_int "value updated" 55 (Memory.get memory a);
  check_true "last writer recorded" (Memory.last_writer memory a = Some 2);
  check_true "writer set" (Memory.writers memory a = [ 2 ])

let test_persistence () =
  let mem, x, _ = setup () in
  let a = Var.addr x in
  let applied = Memory.apply mem ~pid:0 (Op.Write (a, 99)) in
  check_int "old snapshot unchanged" 7 (Memory.get mem a);
  check_int "new state updated" 99 (Memory.get applied.Memory.memory a)

let test_read_from_tracks_last_writer () =
  let mem, x, _ = setup () in
  let a = Var.addr x in
  let m1 = (Memory.apply mem ~pid:3 (Op.Write (a, 1))).Memory.memory in
  let r = Memory.apply m1 ~pid:0 (Op.Read a) in
  check_true "reader sees writer" (r.Memory.read_from = Some 3);
  (* A failed CAS also observes the value. *)
  let c = Memory.apply m1 ~pid:0 (Op.Cas (a, 42, 43)) in
  check_int "cas failed" 0 c.Memory.response;
  check_true "failed cas observes last writer" (c.Memory.read_from = Some 3)

let test_multi_writer_set () =
  let mem, x, _ = setup () in
  let a = Var.addr x in
  let m1 = (Memory.apply mem ~pid:1 (Op.Write (a, 1))).Memory.memory in
  let m2 = (Memory.apply m1 ~pid:2 (Op.Write (a, 2))).Memory.memory in
  let m3 = (Memory.apply m2 ~pid:1 (Op.Write (a, 3))).Memory.memory in
  check_true "writers accumulate" (List.sort compare (Memory.writers m3 a) = [ 1; 2 ]);
  check_true "last writer is most recent" (Memory.last_writer m3 a = Some 1)

let test_failed_cas_does_not_take_last_writer () =
  let mem, x, _ = setup () in
  let a = Var.addr x in
  let m1 = (Memory.apply mem ~pid:1 (Op.Write (a, 1))).Memory.memory in
  let c = Memory.apply m1 ~pid:2 (Op.Cas (a, 9, 10)) in
  check_false "failed cas not a write" c.Memory.wrote;
  check_true "last writer unchanged"
    (Memory.last_writer c.Memory.memory a = Some 1)

let test_ll_sc_protocol () =
  let mem, x, _ = setup () in
  let a = Var.addr x in
  (* p0 links, then stores conditionally: succeeds. *)
  let m1 = (Memory.apply mem ~pid:0 (Op.Ll a)).Memory.memory in
  check_true "link recorded" (Memory.ll_valid m1 ~pid:0 a);
  let sc = Memory.apply m1 ~pid:0 (Op.Sc (a, 5)) in
  check_int "sc succeeds" 1 sc.Memory.response;
  (* The successful SC invalidates every link, including p0's own. *)
  check_false "links cleared" (Memory.ll_valid sc.Memory.memory ~pid:0 a)

let test_sc_broken_by_interfering_write () =
  let mem, x, _ = setup () in
  let a = Var.addr x in
  let m1 = (Memory.apply mem ~pid:0 (Op.Ll a)).Memory.memory in
  let m2 = (Memory.apply m1 ~pid:1 (Op.Write (a, 9))).Memory.memory in
  check_false "write invalidates link" (Memory.ll_valid m2 ~pid:0 a);
  let sc = Memory.apply m2 ~pid:0 (Op.Sc (a, 5)) in
  check_int "sc fails after interference" 0 sc.Memory.response;
  check_int "failed sc leaves value" 9 (Memory.get sc.Memory.memory a)

let test_sc_not_broken_by_read () =
  let mem, x, _ = setup () in
  let a = Var.addr x in
  let m1 = (Memory.apply mem ~pid:0 (Op.Ll a)).Memory.memory in
  let m2 = (Memory.apply m1 ~pid:1 (Op.Read a)).Memory.memory in
  let m3 = (Memory.apply m2 ~pid:1 (Op.Cas (a, 999, 0))).Memory.memory in
  (* the CAS failed, so it is trivial and must not break the link *)
  check_true "trivial ops preserve link" (Memory.ll_valid m3 ~pid:0 a);
  let sc = Memory.apply m3 ~pid:0 (Op.Sc (a, 5)) in
  check_int "sc still succeeds" 1 sc.Memory.response

let test_two_links () =
  let mem, x, _ = setup () in
  let a = Var.addr x in
  let m1 = (Memory.apply mem ~pid:0 (Op.Ll a)).Memory.memory in
  let m2 = (Memory.apply m1 ~pid:1 (Op.Ll a)).Memory.memory in
  let sc0 = Memory.apply m2 ~pid:0 (Op.Sc (a, 5)) in
  check_int "first sc wins" 1 sc0.Memory.response;
  let sc1 = Memory.apply sc0.Memory.memory ~pid:1 (Op.Sc (a, 6)) in
  check_int "second sc loses" 0 sc1.Memory.response

(* Reference model: fold invocations over a plain association list and
   compare final values with Memory. *)
let prop_matches_reference =
  let arb_ops =
    QCheck.small_list
      (QCheck.make
         QCheck.Gen.(
           pair (int_bound 3)
             (oneof
                [ map (fun a -> Op.Read a) (int_bound 3);
                  map2 (fun a v -> Op.Write (a, v)) (int_bound 3) (int_bound 9);
                  map3 (fun a e u -> Op.Cas (a, e, u)) (int_bound 3) (int_bound 9)
                    (int_bound 9);
                  map2 (fun a d -> Op.Faa (a, d)) (int_bound 3) (int_bound 9);
                  map2 (fun a v -> Op.Fas (a, v)) (int_bound 3) (int_bound 9);
                  map (fun a -> Op.Tas a) (int_bound 3) ])))
  in
  qcheck "memory agrees with a reference fold" arb_ops (fun ops ->
      let layout = Var.Ctx.freeze (Var.Ctx.create ()) in
      let mem = Memory.create layout in
      let reference = Hashtbl.create 8 in
      let get_ref a = Option.value ~default:0 (Hashtbl.find_opt reference a) in
      let final =
        List.fold_left
          (fun mem (pid, inv) ->
            let a = Op.addr_of inv in
            let expected = Op.execute ~current:(get_ref a) ~ll_valid:false inv in
            (match expected.Op.new_value with
            | Some v -> Hashtbl.replace reference a v
            | None -> ());
            let applied = Memory.apply mem ~pid inv in
            if applied.Memory.response <> expected.Op.response then
              QCheck.Test.fail_reportf "response mismatch on %s"
                (Op.show_invocation inv);
            applied.Memory.memory)
          mem ops
      in
      List.for_all (fun a -> Memory.get final a = get_ref a) [ 0; 1; 2; 3 ])

(* --- incremental behavioral hash (the explorer's dedup hot path) --- *)

let apply_m m pid inv = (Memory.apply m ~pid inv).Memory.memory

let test_fp_hash_order_independent () =
  let mem, x, y = setup () in
  let a = Var.addr x and b = Var.addr y in
  let m_ab = apply_m (apply_m mem 1 (Op.Write (a, 5))) 2 (Op.Write (b, 9)) in
  let m_ba = apply_m (apply_m mem 2 (Op.Write (b, 9))) 1 (Op.Write (a, 5)) in
  check_true "independent writes commute in the hash"
    (Memory.fp_hash m_ab = Memory.fp_hash m_ba);
  check_true "and in the structural comparison"
    (Memory.same_fingerprint m_ab m_ba)

let test_fp_writeback_restores () =
  let mem, x, _ = setup () in
  let a = Var.addr x in
  (* x starts at 7: write it away, then back.  Only behavior counts — the
     last-writer/writer-set bookkeeping the write-back leaves behind feeds
     the Section 6 analyses, not operation responses. *)
  let m1 = apply_m mem 1 (Op.Write (a, 42)) in
  check_false "changed cell, distinct fingerprint"
    (Memory.same_fingerprint mem m1);
  let m2 = apply_m m1 2 (Op.Write (a, 7)) in
  check_int "written-back store hashes as never touched" (Memory.fp_hash mem)
    (Memory.fp_hash m2);
  check_true "and compares equal to it" (Memory.same_fingerprint mem m2)

let test_fp_sees_load_links () =
  let mem, x, _ = setup () in
  let a = Var.addr x in
  (* A valid load-link changes a future Sc's response, so it must be part
     of the behavioral identity even though the cell's value is intact. *)
  let m1 = apply_m mem 1 (Op.Ll a) in
  check_false "valid link is observable" (Memory.same_fingerprint mem m1);
  check_true "hash moved with it" (Memory.fp_hash mem <> Memory.fp_hash m1)

let suite =
  [ case "initial values" test_initial_values;
    case "write updates value and writer" test_write_updates;
    case "persistence of snapshots" test_persistence;
    case "read_from tracks last writer" test_read_from_tracks_last_writer;
    case "multi-writer set accumulates" test_multi_writer_set;
    case "failed cas leaves last writer" test_failed_cas_does_not_take_last_writer;
    case "ll/sc basic protocol" test_ll_sc_protocol;
    case "sc broken by interfering write" test_sc_broken_by_interfering_write;
    case "sc survives trivial operations" test_sc_not_broken_by_read;
    case "competing links: one sc wins" test_two_links;
    case "fp hash: independent writes commute" test_fp_hash_order_independent;
    case "fp hash: write-back restores identity" test_fp_writeback_restores;
    case "fp hash: load-links are observable" test_fp_sees_load_links;
    prop_matches_reference ]
