(* Property tests over randomly generated programs: the simulator-level
   invariants everything else relies on.

   - replay soundness: replaying a trace keeping everyone reproduces the
     exact same history;
   - model non-interference: cost models never change execution, only its
     classification;
   - re-accounting consistency: History.reaccount under the run's own
     model reproduces the run's own flags;
   - disjoint-footprint erasure: a process whose operations touch only its
     own addresses can always be erased, and survivors keep their
     accounting. *)

open Smr
open Test_util

let n_addrs = 6

(* A random invocation on a bounded address space. *)
let gen_inv ~addr_of =
  QCheck.Gen.(
    int_bound 7 >>= fun kind ->
    map2
      (fun a v ->
        let a = addr_of a in
        match kind with
        | 0 -> Op.Read a
        | 1 -> Op.Write (a, v)
        | 2 -> Op.Cas (a, v mod 4, (v + 1) mod 4)
        | 3 -> Op.Ll a
        | 4 -> Op.Sc (a, v)
        | 5 -> Op.Faa (a, (v mod 3) + 1)
        | 6 -> Op.Fas (a, v)
        | _ -> Op.Tas a)
      (int_bound (n_addrs - 1))
      (int_bound 7))

let gen_program ~addr_of =
  QCheck.Gen.(
    list_size (int_range 1 8) (gen_inv ~addr_of) >|= fun invs ->
    List.fold_right
      (fun inv rest -> Program.bind (Program.step inv) (fun _ -> rest))
      invs (Program.return 0))

(* A machine with [k] processes and a shared address space; each process
   runs [calls] random programs under a seeded random schedule. *)
let arb_workload =
  let gen =
    QCheck.Gen.(
      int_range 2 4 >>= fun k ->
      int_bound 10_000 >>= fun seed ->
      list_size (return k)
        (list_size (int_range 1 3) (gen_program ~addr_of:Fun.id))
      >|= fun programs -> (k, seed, programs))
  in
  QCheck.make gen

let build_and_run (k, seed, programs) =
  let ctx = Var.Ctx.create () in
  for i = 0 to n_addrs - 1 do
    ignore
      (Var.Ctx.int ctx
         ~name:(Printf.sprintf "a%d" i)
         ~home:(if i < k then Var.Module i else Var.Shared)
         0)
  done;
  let layout = Var.Ctx.freeze ctx in
  let sim = Sim.create ~model:(Cost_model.dsm layout) ~layout ~n:k in
  let behavior =
    Schedule.script
      (List.mapi
         (fun p progs ->
           (p, List.mapi (fun i prog -> (Printf.sprintf "c%d" i, prog)) progs))
         programs)
  in
  Schedule.run ~policy:(Schedule.Random_seed seed) ~behavior
    ~pids:(List.init k Fun.id) sim

let steps_signature sim =
  List.map
    (fun (s : History.step) ->
      (s.History.time, s.History.pid, s.History.inv, s.History.response))
    (Sim.steps sim)

let prop_replay_identity =
  qcheck ~count:100 "replay keeping everyone reproduces the history"
    arb_workload
    (fun w ->
      let sim = build_and_run w in
      let replayed = Sim.replay ~check:true ~keep:(fun _ -> true) sim in
      steps_signature replayed = steps_signature sim)

let prop_models_do_not_interfere =
  qcheck ~count:100 "cost models never change execution" arb_workload
    (fun (k, seed, programs) ->
      let run model_of =
        let ctx = Var.Ctx.create () in
        for i = 0 to n_addrs - 1 do
          ignore
            (Var.Ctx.int ctx
               ~name:(Printf.sprintf "a%d" i)
               ~home:(if i < k then Var.Module i else Var.Shared)
               0)
        done;
        let layout = Var.Ctx.freeze ctx in
        let sim = Sim.create ~model:(model_of layout) ~layout ~n:k in
        let behavior =
          Schedule.script
            (List.mapi
               (fun p progs ->
                 (p, List.mapi (fun i prog -> (Printf.sprintf "c%d" i, prog)) progs))
               programs)
        in
        Schedule.run ~policy:(Schedule.Random_seed seed) ~behavior
          ~pids:(List.init k Fun.id) sim
      in
      let dsm = run Cost_model.dsm in
      let cc = run (fun _ -> Cc.model ~n:k ()) in
      let strip sim =
        List.map
          (fun (s : History.step) -> (s.History.pid, s.History.inv, s.History.response))
          (Sim.steps sim)
      in
      strip dsm = strip cc)

let prop_reaccount_consistent =
  qcheck ~count:100 "reaccounting under the run's own model is the identity"
    arb_workload
    (fun w ->
      let sim = build_and_run w in
      let steps = Sim.steps sim in
      let reaccounted =
        History.reaccount (Cost_model.dsm (Sim.layout sim)) steps
      in
      List.for_all2
        (fun (a : History.step) (b : History.step) ->
          a.History.rmr = b.History.rmr && a.History.messages = b.History.messages)
        steps reaccounted)

(* Disjoint footprints: each process only touches its own module. *)
let arb_disjoint =
  let gen =
    QCheck.Gen.(
      int_range 2 4 >>= fun k ->
      int_bound 10_000 >>= fun seed ->
      list_size (return k) (list_size (int_range 1 2) (gen_program ~addr_of:Fun.id))
      >|= fun programs -> (k, seed, programs))
  in
  QCheck.make gen

let prop_disjoint_erasure =
  qcheck ~count:80 "disjoint-footprint processes are always erasable"
    arb_disjoint
    (fun (k, seed, programs) ->
      (* Remap each process's programs onto its own private address. *)
      let remap p prog =
        let rec go = function
          | Program.Return v -> Program.Return v
          | Program.Step (inv, f) ->
            let fix a = ignore a; p in
            let inv =
              match inv with
              | Op.Read a -> Op.Read (fix a)
              | Op.Write (a, v) -> Op.Write (fix a, v)
              | Op.Cas (a, e, u) -> Op.Cas (fix a, e, u)
              | Op.Ll a -> Op.Ll (fix a)
              | Op.Sc (a, v) -> Op.Sc (fix a, v)
              | Op.Faa (a, d) -> Op.Faa (fix a, d)
              | Op.Fas (a, v) -> Op.Fas (fix a, v)
              | Op.Tas a -> Op.Tas (fix a)
            in
            Program.Step (inv, fun v -> go (f v))
        in
        go prog
      in
      let programs = List.mapi (fun p progs -> List.map (remap p) progs) programs in
      let sim = build_and_run (k, seed, programs) in
      let victim = seed mod k in
      match Sim.erase sim [ victim ] with
      | erased ->
        List.for_all
          (fun p -> p = victim || Sim.rmrs erased p = Sim.rmrs sim p)
          (List.init k Fun.id)
      | exception Sim.Replay_divergence _ -> false)

let suite =
  [ prop_replay_identity;
    prop_models_do_not_interfere;
    prop_reaccount_consistent;
    prop_disjoint_erasure ]
