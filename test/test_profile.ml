(* The observability planes and their consumers: counter-plane unit
   semantics, the profiler's attribution tables (deterministic, and the
   separation visible in them), and the coverage signatures built on the
   same planes. *)

open Test_util

(* --- Obs.Counters unit semantics --- *)

let test_counters_planes () =
  let c = Obs.Counters.create ~groups:2 ~pc_slots:4 ~n:3 ~size:2 () in
  Obs.Counters.set_group c ~pid:2 ~group:1;
  check_int "default group" 0 (Obs.Counters.group_of c ~pid:1);
  check_int "assigned group" 1 (Obs.Counters.group_of c ~pid:2);
  Obs.Counters.bump c ~pid:0 ~addr:0 ~pc:0 Obs.Counters.Rmr;
  Obs.Counters.bump c ~pid:0 ~addr:0 ~pc:1 Obs.Counters.Rmr;
  Obs.Counters.bump c ~pid:2 ~addr:1 ~pc:0 Obs.Counters.Rmr;
  Obs.Counters.bump c ~pid:2 ~addr:1 ~pc:9 Obs.Counters.Local;
  Obs.Counters.bump_messages c ~pid:0 ~addr:0 3;
  Obs.Counters.bump_messages c ~pid:2 ~addr:0 2;
  (* cell plane is per group *)
  check_int "group 0 cell 0 rmr" 2
    (Obs.Counters.cell_count c ~group:0 ~addr:0 Obs.Counters.Rmr);
  check_int "group 1 cell 1 rmr" 1
    (Obs.Counters.cell_count c ~group:1 ~addr:1 Obs.Counters.Rmr);
  check_int "cell_total sums groups" 1
    (Obs.Counters.cell_total c ~addr:1 Obs.Counters.Rmr);
  (* pid plane is exact *)
  check_int "pid 0 rmr" 2 (Obs.Counters.pid_count c ~pid:0 Obs.Counters.Rmr);
  check_int "pid 2 local" 1
    (Obs.Counters.pid_count c ~pid:2 Obs.Counters.Local);
  check_int "pid 1 untouched" 0
    (Obs.Counters.pid_count c ~pid:1 Obs.Counters.Rmr);
  (* pc plane clamps deep steps into the last slot *)
  check_int "pc 9 clamped to slot 3" 1
    (Obs.Counters.pc_count c ~group:1 ~pc:3 Obs.Counters.Local);
  (* messages accumulate per (group, cell) *)
  check_int "group 0 messages at 0" 3
    (Obs.Counters.messages_at c ~group:0 ~addr:0);
  check_int "group 1 messages at 0" 2
    (Obs.Counters.messages_at c ~group:1 ~addr:0);
  check_int "messages_total_at sums groups" 5
    (Obs.Counters.messages_total_at c ~addr:0);
  check_int "total rmr" 3 (Obs.Counters.total c Obs.Counters.Rmr);
  check_int "total messages" 5 (Obs.Counters.total_messages c);
  Obs.Counters.reset c;
  check_int "reset zeroes planes" 0 (Obs.Counters.total c Obs.Counters.Rmr);
  check_int "reset zeroes messages" 0 (Obs.Counters.total_messages c);
  check_int "reset keeps group assignments" 1
    (Obs.Counters.group_of c ~pid:2);
  Alcotest.check_raises "out-of-range group rejected"
    (Invalid_argument "Counters.set_group: group out of range") (fun () ->
      Obs.Counters.set_group c ~pid:0 ~group:5)

let test_counters_fold_into_metrics () =
  let c = Obs.Counters.create ~n:2 ~size:1 () in
  Obs.Counters.bump c ~pid:0 ~addr:0 ~pc:0 Obs.Counters.Rmr;
  Obs.Counters.bump c ~pid:1 ~addr:0 ~pc:0 Obs.Counters.Local;
  Obs.Counters.bump c ~pid:1 ~addr:0 ~pc:1 Obs.Counters.Fetch;
  Obs.Counters.bump c ~pid:1 ~addr:0 ~pc:2 Obs.Counters.Crash;
  Obs.Counters.bump_messages c ~pid:1 ~addr:0 4;
  let m = Obs.Metrics.create () in
  Obs.Counters.fold_into_metrics ~model:"cc-wt" c m;
  check_int "rmr_total folded" 1 (int_of_float (Obs.Metrics.total m "rmr_total"));
  check_int "steps_total folds rmr+local" 2
    (int_of_float (Obs.Metrics.total m "steps_total"));
  check_int "cache_events_total folded" 1
    (int_of_float (Obs.Metrics.total m "cache_events_total"));
  check_int "coherence_messages_total folded" 4
    (int_of_float (Obs.Metrics.total m "coherence_messages_total"));
  check_int "crashes_total folded" 1
    (int_of_float (Obs.Metrics.total m "crashes_total"));
  (* Zero planes fold to no rows at all. *)
  Obs.Counters.reset c;
  let m0 = Obs.Metrics.create () in
  Obs.Counters.fold_into_metrics c m0;
  check_int "empty planes emit nothing" 0 (List.length (Obs.Metrics.rows m0))

(* --- the profiler over a small open-system scenario --- *)

let scenario ~algorithm ~model ~waiters ~seed =
  let m = Option.get (Core.Experiment.find_algorithm algorithm) in
  Core.Loadgen.scenario ~algorithm:m ~model
    { Workload.Driver.default_spec with seed; waiters; signals = 4 }

let render sc r =
  Core.Results.to_json_many (Core.Profile.tables ~top:5 sc r)

let test_profile_deterministic () =
  let sc = scenario ~algorithm:"cc-flag" ~model:`Cc_wt ~waiters:40 ~seed:5 in
  let r1 = Core.Profile.run ~record_cells:100 sc in
  let r2 = Core.Profile.run ~record_cells:100 sc in
  Alcotest.(check string) "tables byte-identical across runs"
    (render sc r1) (render sc r2);
  Alcotest.(check string) "chrome export byte-identical across runs"
    (Core.Profile.chrome_trace r1)
    (Core.Profile.chrome_trace r2);
  (* And the planes agree with the driver's own accounting. *)
  check_int "counter rmr total = report total"
    r1.Core.Profile.p_report.Workload.Driver.r_total_rmrs
    (Obs.Counters.total r1.Core.Profile.p_counters Obs.Counters.Rmr);
  check_int "counter message total = report total"
    r1.Core.Profile.p_report.Workload.Driver.r_total_messages
    (Obs.Counters.total_messages r1.Core.Profile.p_counters)

let test_profile_shows_separation () =
  (* cc-flag: the signaler's RMRs concentrate on one cell; the top hot
     cell carries >= 99% of them.  dsm-broadcast: they smear across the
     waiters' home cells, so no cell can hold 99% of the signaler's
     spend.  This is the CI jq gate, from the library side. *)
  let share algorithm model =
    let sc = scenario ~algorithm ~model ~waiters:40 ~seed:1 in
    let r = Core.Profile.run sc in
    let sig_rmrs addr =
      Obs.Counters.cell_count r.Core.Profile.p_counters
        ~group:Core.Profile.signaler_group ~addr Obs.Counters.Rmr
    in
    let total =
      Obs.Counters.pid_count r.Core.Profile.p_counters ~pid:0 Obs.Counters.Rmr
    in
    let best = ref 0 in
    for a = 0 to Obs.Counters.size r.Core.Profile.p_counters - 1 do
      if sig_rmrs a > !best then best := sig_rmrs a
    done;
    (!best, total)
  in
  let best_cc, total_cc = share "cc-flag" `Cc_wt in
  check_true "cc-flag signaler spend is nonzero" (total_cc > 0);
  check_true "cc-flag: one cell holds >= 99% of signaler RMRs"
    (100 * best_cc >= 99 * total_cc);
  let best_dsm, total_dsm = share "dsm-broadcast" `Dsm in
  check_true "dsm-broadcast signaler spend is nonzero" (total_dsm > 0);
  check_true "dsm-broadcast: the signaler's spend smears across cells"
    (100 * best_dsm < 50 * total_dsm)

let test_profile_cell_recording_cap () =
  let sc = scenario ~algorithm:"cc-flag" ~model:`Cc_wt ~waiters:30 ~seed:2 in
  let full = Core.Profile.run ~record_cells:max_int sc in
  let events = List.length full.Core.Profile.p_cells in
  check_true "a cc run produces coherence transactions" (events > 5);
  check_int "no drops under an unbounded cap" 0
    full.Core.Profile.p_cells_dropped;
  let capped = Core.Profile.run ~record_cells:5 sc in
  check_int "cap bounds the recording" 5
    (List.length capped.Core.Profile.p_cells);
  check_int "overflow is counted, not lost silently" (events - 5)
    capped.Core.Profile.p_cells_dropped;
  check_true "capped prefix is the stream prefix"
    (capped.Core.Profile.p_cells
    = List.filteri (fun i _ -> i < 5) full.Core.Profile.p_cells)

(* --- coverage signatures --- *)

let test_coverage_bucket () =
  List.iter
    (fun (v, b) -> check_int (Printf.sprintf "bucket %d" v) b (Fuzz.Coverage.bucket v))
    [ (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4); (1023, 10);
      (1024, 11) ]

let test_coverage_signature_deterministic () =
  Core.Lint_catalog.register ();
  let algorithms =
    List.map
      (fun (module A : Core.Signaling.POLLING) -> A.name)
      Core.Experiment.polling_algorithms
  in
  let profile =
    { Fuzz.Gen.p_families = [ `Programs; `Script; `Entry ];
      p_algorithms = algorithms;
      p_entries = [] }
  in
  let distinct = Hashtbl.create 16 in
  for index = 0 to 39 do
    let case = Fuzz.Gen.gen ~profile ~seed:3 ~index in
    let s1 = Fuzz.Coverage.signature case in
    let s2 = Fuzz.Coverage.signature case in
    Alcotest.(check string)
      (Printf.sprintf "case %d signature stable" index)
      s1 s2;
    check_true "signature is non-empty" (String.length s1 > 0);
    (* Shape: "quiet" or space-separated class:..c/b.. and msg:b.. parts. *)
    if s1 <> "quiet" then
      List.iter
        (fun part ->
          check_true
            (Printf.sprintf "part %S has a class prefix" part)
            (String.contains part ':'))
        (String.split_on_char ' ' s1);
    Hashtbl.replace distinct s1 ()
  done;
  check_true "the stream covers more than one bucket"
    (Hashtbl.length distinct > 1)

let suite =
  [ case "counter planes: bump, clamp, group, reset" test_counters_planes;
    case "counters fold into the tracing metrics rows"
      test_counters_fold_into_metrics;
    case "profile tables and chrome export are deterministic"
      test_profile_deterministic;
    case "hot-cell attribution separates cc-flag from dsm-broadcast"
      test_profile_shows_separation;
    case "cell recording cap counts its overflow"
      test_profile_cell_recording_cap;
    case "coverage buckets are binary orders of magnitude"
      test_coverage_bucket;
    case "coverage signatures deterministic and well-formed"
      test_coverage_signature_deterministic ]
