(* Unit and property tests for the operation vocabulary (Op). *)

open Smr
open Test_util

let exec ?(current = 0) ?(ll_valid = false) inv =
  Op.execute ~current ~ll_valid inv

let test_read () =
  let e = exec ~current:7 (Op.Read 0) in
  check_int "read returns current" 7 e.Op.response;
  check_true "read is trivial" (e.Op.new_value = None)

let test_write () =
  let e = exec ~current:7 (Op.Write (0, 9)) in
  check_int "write responds 0" 0 e.Op.response;
  check_true "write overwrites" (e.Op.new_value = Some 9)

let test_write_same_value_nontrivial () =
  (* "A nontrivial operation overwrites a memory location, possibly with
     the same value as before" (Sec. 2). *)
  let e = exec ~current:5 (Op.Write (0, 5)) in
  check_true "write of same value is still nontrivial" (e.Op.new_value = Some 5)

let test_cas_success () =
  let e = exec ~current:3 (Op.Cas (0, 3, 8)) in
  check_int "cas success responds 1" 1 e.Op.response;
  check_true "cas success writes" (e.Op.new_value = Some 8)

let test_cas_failure () =
  let e = exec ~current:4 (Op.Cas (0, 3, 8)) in
  check_int "cas failure responds 0" 0 e.Op.response;
  check_true "cas failure is trivial" (e.Op.new_value = None)

let test_ll_sc () =
  let e = exec ~current:2 (Op.Ll 0) in
  check_int "ll returns current" 2 e.Op.response;
  check_true "ll is trivial" (e.Op.new_value = None);
  let ok = exec ~current:2 ~ll_valid:true (Op.Sc (0, 9)) in
  check_int "sc with link succeeds" 1 ok.Op.response;
  check_true "sc with link writes" (ok.Op.new_value = Some 9);
  let fail = exec ~current:2 ~ll_valid:false (Op.Sc (0, 9)) in
  check_int "sc without link fails" 0 fail.Op.response;
  check_true "failed sc is trivial" (fail.Op.new_value = None)

let test_faa () =
  let e = exec ~current:10 (Op.Faa (0, 3)) in
  check_int "faa returns old" 10 e.Op.response;
  check_true "faa adds" (e.Op.new_value = Some 13)

let test_fas () =
  let e = exec ~current:10 (Op.Fas (0, 4)) in
  check_int "fas returns old" 10 e.Op.response;
  check_true "fas stores" (e.Op.new_value = Some 4)

let test_tas () =
  let e = exec ~current:0 (Op.Tas 0) in
  check_int "tas returns old" 0 e.Op.response;
  check_true "tas sets 1" (e.Op.new_value = Some 1);
  let e2 = exec ~current:1 (Op.Tas 0) in
  check_int "second tas returns 1" 1 e2.Op.response

let test_addr_of () =
  List.iter
    (fun inv -> check_int "addr_of" 42 (Op.addr_of inv))
    [ Op.Read 42; Op.Write (42, 0); Op.Cas (42, 0, 1); Op.Ll 42;
      Op.Sc (42, 1); Op.Faa (42, 1); Op.Fas (42, 1); Op.Tas 42 ]

let test_classification () =
  check_true "read is read-only" (Op.is_read_only (Op.Read 0));
  check_true "ll is read-only" (Op.is_read_only (Op.Ll 0));
  check_false "cas is not read-only" (Op.is_read_only (Op.Cas (0, 0, 1)));
  check_true "cas is comparison" (Op.is_comparison (Op.Cas (0, 0, 1)));
  check_true "sc is comparison" (Op.is_comparison (Op.Sc (0, 1)));
  check_false "faa is not comparison" (Op.is_comparison (Op.Faa (0, 1)))

let test_primitive_classes () =
  let open Op in
  check_true "read class" (primitive_class (Read 0) = Reads_writes);
  check_true "write class" (primitive_class (Write (0, 1)) = Reads_writes);
  check_true "cas class" (primitive_class (Cas (0, 0, 1)) = Comparison);
  check_true "ll class" (primitive_class (Ll 0) = Comparison);
  check_true "faa class" (primitive_class (Faa (0, 1)) = Fetch_and_phi);
  check_true "tas class" (primitive_class (Tas 0) = Fetch_and_phi)

(* Exhaustive check of the response conventions documented in op.mli:
   Read/Ll answer the current value; Write answers 0; Cas answers 1 exactly
   on match, Sc exactly when the link is valid; Faa/Fas/Tas answer the
   previous value.  Every constructor, every (current, ll_valid) in a small
   window, and every kind in [Op.all_kinds] must be covered. *)
let test_execute_conventions_exhaustive () =
  let covered = Hashtbl.create 8 in
  let check_one ~current ~ll_valid inv =
    Hashtbl.replace covered (Op.kind inv) ();
    let e = Op.execute ~current ~ll_valid inv in
    let expect_response, expect_new =
      match inv with
      | Op.Read _ | Op.Ll _ -> (current, None)
      | Op.Write (_, v) -> (0, Some v)
      | Op.Cas (_, expected, update) ->
        if current = expected then (1, Some update) else (0, None)
      | Op.Sc (_, v) -> if ll_valid then (1, Some v) else (0, None)
      | Op.Faa (_, d) -> (current, Some (current + d))
      | Op.Fas (_, v) -> (current, Some v)
      | Op.Tas _ -> (current, Some 1)
    in
    check_int
      (Printf.sprintf "%s response (current=%d, ll=%b)"
         (Op.kind_name (Op.kind inv)) current ll_valid)
      expect_response e.Op.response;
    check_true
      (Printf.sprintf "%s new value (current=%d, ll=%b)"
         (Op.kind_name (Op.kind inv)) current ll_valid)
      (e.Op.new_value = expect_new)
  in
  List.iter
    (fun current ->
      List.iter
        (fun ll_valid ->
          List.iter
            (check_one ~current ~ll_valid)
            [ Op.Read 0; Op.Ll 0; Op.Write (0, 3); Op.Write (0, current);
              Op.Cas (0, current, 7); Op.Cas (0, current + 1, 7);
              Op.Sc (0, 5); Op.Faa (0, 2); Op.Faa (0, -1); Op.Fas (0, 4);
              Op.Tas 0 ])
        [ false; true ])
    [ -1; 0; 1; 2; 3 ];
  check_int "all 8 kinds covered" (List.length Op.all_kinds)
    (Hashtbl.length covered);
  List.iter
    (fun k ->
      check_true
        (Printf.sprintf "kind %s exercised" (Op.kind_name k))
        (Hashtbl.mem covered k))
    Op.all_kinds

let arb_inv =
  QCheck.make
    ~print:Op.show_invocation
    QCheck.Gen.(
      oneof
        [ map (fun a -> Op.Read a) (int_bound 7);
          map2 (fun a v -> Op.Write (a, v)) (int_bound 7) (int_bound 15);
          map3 (fun a e u -> Op.Cas (a, e, u)) (int_bound 7) (int_bound 15)
            (int_bound 15);
          map (fun a -> Op.Ll a) (int_bound 7);
          map2 (fun a v -> Op.Sc (a, v)) (int_bound 7) (int_bound 15);
          map2 (fun a d -> Op.Faa (a, d)) (int_bound 7) (int_bound 15);
          map2 (fun a v -> Op.Fas (a, v)) (int_bound 7) (int_bound 15);
          map (fun a -> Op.Tas a) (int_bound 7) ])

let prop_read_only_never_writes =
  qcheck "read-only operations never produce a new value"
    QCheck.(pair arb_inv (int_bound 100))
    (fun (inv, current) ->
      let e = Op.execute ~current ~ll_valid:true inv in
      QCheck.assume (Op.is_read_only inv);
      e.Op.new_value = None)

let prop_fetch_ops_return_old =
  qcheck "faa/fas/tas always return the previous value"
    QCheck.(pair arb_inv (int_bound 100))
    (fun (inv, current) ->
      QCheck.assume
        (match Op.kind inv with
        | Op.K_faa | Op.K_fas | Op.K_tas -> true
        | _ -> false);
      (Op.execute ~current ~ll_valid:false inv).Op.response = current)

let prop_nontrivial_iff_overwrite =
  qcheck "successful comparison ops overwrite; failed ones do not"
    QCheck.(triple arb_inv (int_bound 100) QCheck.bool)
    (fun (inv, current, ll_valid) ->
      let e = Op.execute ~current ~ll_valid inv in
      match inv with
      | Op.Cas (_, expected, _) -> (e.Op.new_value <> None) = (current = expected)
      | Op.Sc _ -> (e.Op.new_value <> None) = ll_valid
      | _ -> true)

let suite =
  [ case "read" test_read;
    case "write" test_write;
    case "write same value is nontrivial" test_write_same_value_nontrivial;
    case "cas success" test_cas_success;
    case "cas failure" test_cas_failure;
    case "ll/sc" test_ll_sc;
    case "faa" test_faa;
    case "fas" test_fas;
    case "tas" test_tas;
    case "addr_of" test_addr_of;
    case "read-only / comparison classification" test_classification;
    case "primitive classes" test_primitive_classes;
    case "execute conventions, exhaustive" test_execute_conventions_exhaustive;
    prop_read_only_never_writes;
    prop_fetch_ops_return_old;
    prop_nontrivial_iff_overwrite ]
